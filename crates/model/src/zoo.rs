//! The concrete network topologies evaluated in the paper.
//!
//! * [`lenet5`] — `32x32x1 – 6C5 – P2 – 16C5 – P2 – 120C5 – 120 – 84 – 10`
//!   (Section IV-A).
//! * [`fang_cnn`] — the convolutional SNN of Fang et al. \[11\]:
//!   `28x28 – 32C3 – P2 – 32C3 – P2 – 256 – 10` (Table III, footnote 2).
//! * [`ju_cnn`] — the CNN of Ju et al. \[12\]:
//!   `28x28 – 64C5 – 2P – 64C5 – 2P – 128 – 10` (Table III, footnote 1).
//! * [`vgg11`] — VGG-11 with 28.5 M parameters for CIFAR-100
//!   (Section IV-A / Table III, last row).
//! * [`tiny_cnn`] — a miniature network used by fast unit tests and the
//!   quickstart example.

use crate::{LayerSpec, NetworkSpec};

/// LeNet-5 as configured in the paper (Section IV-A).
pub fn lenet5() -> NetworkSpec {
    NetworkSpec::new(
        "LeNet-5",
        vec![1, 32, 32],
        vec![
            LayerSpec::conv(1, 6, 5),
            LayerSpec::avg_pool2(),
            LayerSpec::conv(6, 16, 5),
            LayerSpec::avg_pool2(),
            LayerSpec::conv(16, 120, 5),
            LayerSpec::Flatten,
            LayerSpec::linear(120, 120),
            LayerSpec::linear(120, 84),
            LayerSpec::linear(84, 10),
        ],
    )
    .expect("LeNet-5 topology is valid")
}

/// The convolutional SNN of Fang et al. \[11\] used for the Table III
/// comparison: `28x28 – 32C3 – P2 – 32C3 – P2 – 256 – 10`.
pub fn fang_cnn() -> NetworkSpec {
    NetworkSpec::new(
        "Fang-CNN",
        vec![1, 28, 28],
        vec![
            LayerSpec::conv_padded(1, 32, 3, 1),
            LayerSpec::avg_pool2(),
            LayerSpec::conv_padded(32, 32, 3, 1),
            LayerSpec::avg_pool2(),
            LayerSpec::Flatten,
            LayerSpec::linear(32 * 7 * 7, 256),
            LayerSpec::linear(256, 10),
        ],
    )
    .expect("Fang CNN topology is valid")
}

/// The CNN of Ju et al. \[12\] used for the Table III comparison:
/// `28x28 – 64C5 – 2P – 64C5 – 2P – 128 – 10` (padded 5×5 convolutions).
pub fn ju_cnn() -> NetworkSpec {
    NetworkSpec::new(
        "Ju-CNN",
        vec![1, 28, 28],
        vec![
            LayerSpec::conv_padded(1, 64, 5, 2),
            LayerSpec::max_pool2(),
            LayerSpec::conv_padded(64, 64, 5, 2),
            LayerSpec::max_pool2(),
            LayerSpec::Flatten,
            LayerSpec::linear(64 * 7 * 7, 128),
            LayerSpec::linear(128, 10),
        ],
    )
    .expect("Ju CNN topology is valid")
}

/// VGG-11 for 32×32×3 inputs and `num_classes` outputs (CIFAR-100 in the
/// paper).  Eleven weight layers: eight 3×3 convolutions and three
/// fully-connected layers, with 2×2 max pooling after selected stages.
pub fn vgg11(num_classes: usize) -> NetworkSpec {
    NetworkSpec::new(
        "VGG-11",
        vec![3, 32, 32],
        vec![
            LayerSpec::conv_padded(3, 64, 3, 1),
            LayerSpec::max_pool2(),
            LayerSpec::conv_padded(64, 128, 3, 1),
            LayerSpec::max_pool2(),
            LayerSpec::conv_padded(128, 256, 3, 1),
            LayerSpec::conv_padded(256, 256, 3, 1),
            LayerSpec::max_pool2(),
            LayerSpec::conv_padded(256, 512, 3, 1),
            LayerSpec::conv_padded(512, 512, 3, 1),
            LayerSpec::max_pool2(),
            LayerSpec::conv_padded(512, 512, 3, 1),
            LayerSpec::conv_padded(512, 512, 3, 1),
            LayerSpec::max_pool2(),
            LayerSpec::Flatten,
            LayerSpec::linear(512, 4096),
            LayerSpec::linear(4096, 4096),
            LayerSpec::linear(4096, num_classes),
        ],
    )
    .expect("VGG-11 topology is valid")
}

/// VGG-11 for CIFAR-10 — the ten-class deployment the tiled
/// activation-buffer runs and the CI smoke use.  Identical topology to
/// [`vgg11`] (28.5 M parameters, eight 3×3 convolutions, three
/// fully-connected layers); only the classifier width differs.
pub fn vgg11_cifar10() -> NetworkSpec {
    vgg11(10)
}

/// A miniature CNN (`12x12x1 – 4C3 – P2 – 5x5x4 – 20 – 10`) used by unit
/// tests and the quickstart example where full LeNet would be needlessly
/// slow.
pub fn tiny_cnn() -> NetworkSpec {
    NetworkSpec::new(
        "Tiny-CNN",
        vec![1, 12, 12],
        vec![
            LayerSpec::conv(1, 4, 3),
            LayerSpec::avg_pool2(),
            LayerSpec::Flatten,
            LayerSpec::linear(4 * 5 * 5, 20),
            LayerSpec::linear(20, 10),
        ],
    )
    .expect("tiny CNN topology is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet5_matches_paper_architecture() {
        let net = lenet5();
        assert_eq!(
            net.notation(),
            "32x32x1 - 6C5 - P2 - 16C5 - P2 - 120C5 - 120 - 84 - 10"
        );
        assert_eq!(net.output_shape(), &[10]);
        // Final conv output is 120x1x1, flattened to 120.
        assert_eq!(net.layer_output_shape(4), &[120, 1, 1]);
    }

    #[test]
    fn fang_cnn_matches_footnote() {
        let net = fang_cnn();
        assert_eq!(net.notation(), "28x28x1 - 32C3 - P2 - 32C3 - P2 - 256 - 10");
        assert_eq!(net.num_classes(), 10);
    }

    #[test]
    fn ju_cnn_matches_footnote() {
        let net = ju_cnn();
        assert_eq!(
            net.notation(),
            "28x28x1 - 64C5 - MP2 - 64C5 - MP2 - 128 - 10"
        );
        assert_eq!(net.num_classes(), 10);
    }

    #[test]
    fn vgg11_has_eleven_weight_layers_and_about_28m_parameters() {
        let net = vgg11(100);
        assert_eq!(net.weighted_layers().len(), 11);
        let params = net.parameter_count();
        // The paper quotes 28.5 million parameters for VGG-11.
        assert!(
            (27_000_000..30_000_000).contains(&params),
            "VGG-11 parameter count {params} outside the expected range"
        );
    }

    #[test]
    fn vgg11_only_uses_3x3_kernels() {
        assert_eq!(vgg11(100).kernel_sizes(), vec![3]);
    }

    #[test]
    fn lenet_uses_only_5x5_kernels() {
        assert_eq!(lenet5().kernel_sizes(), vec![5]);
    }

    #[test]
    fn tiny_cnn_is_valid_and_small() {
        let net = tiny_cnn();
        assert!(net.parameter_count() < 5_000);
        assert_eq!(net.num_classes(), 10);
    }
}
