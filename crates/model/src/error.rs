use std::fmt;

/// Errors produced while constructing or executing network models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A layer's input shape is incompatible with the preceding layer's
    /// output.
    ShapeMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Human-readable description.
        context: String,
    },
    /// A network was declared with an unsupported structure (for example no
    /// layers, or a convolution after flattening).
    InvalidNetwork {
        /// Human-readable description.
        context: String,
    },
    /// Parameters do not match the network they are used with.
    ParameterMismatch {
        /// Human-readable description.
        context: String,
    },
    /// An error bubbled up from the tensor substrate.
    Tensor(snn_tensor::TensorError),
    /// An error bubbled up from the encoding crate.
    Encoding(snn_encoding::EncodingError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ShapeMismatch { layer, context } => {
                write!(f, "shape mismatch at layer {layer}: {context}")
            }
            ModelError::InvalidNetwork { context } => {
                write!(f, "invalid network: {context}")
            }
            ModelError::ParameterMismatch { context } => {
                write!(f, "parameter mismatch: {context}")
            }
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
            ModelError::Encoding(e) => write!(f, "encoding error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            ModelError::Encoding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<snn_tensor::TensorError> for ModelError {
    fn from(e: snn_tensor::TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<snn_encoding::EncodingError> for ModelError {
    fn from(e: snn_encoding::EncodingError) -> Self {
        ModelError::Encoding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let err = ModelError::InvalidNetwork {
            context: "network has no layers".to_string(),
        };
        assert!(err.to_string().contains("no layers"));
    }

    #[test]
    fn tensor_errors_convert() {
        let tensor_err = snn_tensor::TensorError::InvalidParameter {
            context: "stride".into(),
        };
        let err: ModelError = tensor_err.into();
        assert!(matches!(err, ModelError::Tensor(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
