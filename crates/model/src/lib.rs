//! # snn-model
//!
//! Network descriptions, parameters, quantization and the ANN-to-SNN
//! conversion flow used by the paper.
//!
//! The accelerator in the paper does not train networks: SNN models are
//! obtained by training an equivalent ANN, quantizing its parameters to
//! 3 bits and transferring them to a radix-encoded SNN (Section IV-A,
//! reference \[14\]).  This crate provides every piece of that flow:
//!
//! * [`layer::LayerSpec`] / [`network::NetworkSpec`] — declarative
//!   descriptions of the feed-forward CNN topologies the accelerator
//!   supports (convolution, pooling, flatten, fully-connected).
//! * [`zoo`] — the concrete models of the paper: LeNet-5, the CNNs of
//!   Fang et al. \[11\] and Ju et al. \[12\], and VGG-11.
//! * [`params::Parameters`] — floating-point weights (randomly initialised
//!   or produced by `snn-train`), and their 3-bit quantized counterpart
//!   [`params::QuantizedParameters`].
//! * [`forward`] — the floating-point ANN reference forward pass.
//! * [`convert`] — ANN-to-SNN conversion: activation-range calibration and
//!   per-layer requantization scales.
//! * [`snn`] — the *functional* radix-encoded SNN: integer-domain
//!   inference that the cycle-level accelerator simulator in `snn-accel`
//!   reproduces bit-exactly.
//!
//! # Example
//!
//! ```
//! use snn_model::{zoo, params::Parameters};
//!
//! let net = zoo::lenet5();
//! assert_eq!(net.layers().len(), 9);
//! let params = Parameters::he_init(&net, 42)?;
//! assert_eq!(params.layer_weights().len(), net.layers().len());
//! # Ok::<(), snn_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod convert;
pub mod forward;
pub mod layer;
pub mod network;
pub mod params;
pub mod snn;
pub mod summary;
pub mod zoo;

pub use error::ModelError;
pub use layer::LayerSpec;
pub use network::NetworkSpec;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
