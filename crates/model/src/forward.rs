//! Floating-point ANN reference forward pass.
//!
//! This is the "equivalent ANN" of the ANN-to-SNN conversion flow
//! (Section IV-A).  ReLU is applied after every convolution and
//! fully-connected layer except the final classifier layer.

use crate::layer::PoolKind;
use crate::{params::Parameters, LayerSpec, ModelError, NetworkSpec, Result};
use snn_tensor::{ops, Tensor};

/// The activations produced by [`ann_forward`]: one tensor per layer
/// output, plus the logits of the final layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardTrace {
    /// Output activation of every layer, in layer order.  Entry `i` is the
    /// output of layer `i` (after ReLU where applicable).
    pub activations: Vec<Tensor<f32>>,
}

impl ForwardTrace {
    /// The network output (logits of the final layer).
    pub fn logits(&self) -> &Tensor<f32> {
        self.activations.last().expect("trace is never empty")
    }

    /// Index of the largest logit.
    pub fn predicted_class(&self) -> usize {
        argmax(self.logits())
    }
}

/// Index of the maximum element (ties resolved to the first).
pub fn argmax(t: &Tensor<f32>) -> usize {
    t.iter()
        .enumerate()
        .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
            if v > bv {
                (i, v)
            } else {
                (bi, bv)
            }
        })
        .0
}

/// Runs the floating-point forward pass of `net` with `params` on a single
/// `[C, H, W]` input.
///
/// # Errors
///
/// Returns an error when the input shape does not match the network or the
/// parameters are missing/mismatched.
pub fn ann_forward(
    net: &NetworkSpec,
    params: &Parameters,
    input: &Tensor<f32>,
) -> Result<ForwardTrace> {
    if input.shape().dims() != net.input_shape() {
        return Err(ModelError::ShapeMismatch {
            layer: 0,
            context: format!(
                "input shape {:?} does not match network input {:?}",
                input.shape().dims(),
                net.input_shape()
            ),
        });
    }
    let last_layer = net.layers().len() - 1;
    let mut current = input.clone();
    let mut activations = Vec::with_capacity(net.layers().len());
    for (i, layer) in net.layers().iter().enumerate() {
        let is_output_layer = i == last_layer;
        current = match *layer {
            LayerSpec::Conv2d {
                stride, padding, ..
            } => {
                let p = params
                    .layer(i)
                    .ok_or_else(|| ModelError::ParameterMismatch {
                        context: format!("layer {i} is missing parameters"),
                    })?;
                let out = ops::conv2d(&current, &p.weight, Some(&p.bias), stride, padding)?;
                if is_output_layer {
                    out
                } else {
                    ops::relu(&out)
                }
            }
            LayerSpec::Pool { kind, window } => match kind {
                PoolKind::Average => ops::avg_pool2d(&current, window)?,
                PoolKind::Max => ops::max_pool2d(&current, window)?,
            },
            LayerSpec::Flatten => {
                let volume = current.len();
                current.reshape(vec![volume])?
            }
            LayerSpec::Linear { .. } => {
                let p = params
                    .layer(i)
                    .ok_or_else(|| ModelError::ParameterMismatch {
                        context: format!("layer {i} is missing parameters"),
                    })?;
                let out = ops::linear(&current, &p.weight, Some(&p.bias))?;
                if is_output_layer {
                    out
                } else {
                    ops::relu(&out)
                }
            }
        };
        activations.push(current.clone());
    }
    Ok(ForwardTrace { activations })
}

/// Predicts the class of a single input.
///
/// # Errors
///
/// Propagates errors from [`ann_forward`].
pub fn predict(net: &NetworkSpec, params: &Parameters, input: &Tensor<f32>) -> Result<usize> {
    Ok(ann_forward(net, params, input)?.predicted_class())
}

/// Classification accuracy of the ANN over an iterator of labelled samples.
///
/// # Errors
///
/// Propagates errors from [`ann_forward`].
pub fn evaluate<'a, I>(net: &NetworkSpec, params: &Parameters, samples: I) -> Result<f32>
where
    I: IntoIterator<Item = (&'a Tensor<f32>, usize)>,
{
    let mut correct = 0usize;
    let mut total = 0usize;
    for (input, label) in samples {
        if predict(net, params, input)? == label {
            correct += 1;
        }
        total += 1;
    }
    Ok(if total == 0 {
        0.0
    } else {
        correct as f32 / total as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LayerParameters;
    use crate::zoo;

    #[test]
    fn argmax_picks_first_maximum() {
        let t = Tensor::from_vec(vec![4], vec![0.1f32, 0.9, 0.9, 0.2]).unwrap();
        assert_eq!(argmax(&t), 1);
    }

    #[test]
    fn forward_produces_one_activation_per_layer() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 1).unwrap();
        let input = Tensor::filled(vec![1, 12, 12], 0.5f32);
        let trace = ann_forward(&net, &params, &input).unwrap();
        assert_eq!(trace.activations.len(), net.layers().len());
        assert_eq!(trace.logits().shape().dims(), &[10]);
        assert!(trace.predicted_class() < 10);
    }

    #[test]
    fn hidden_activations_are_non_negative() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 2).unwrap();
        let input = Tensor::filled(vec![1, 12, 12], 1.0f32);
        let trace = ann_forward(&net, &params, &input).unwrap();
        // All layers except the final logits are post-ReLU (or pooling of
        // post-ReLU values), hence non-negative.
        for act in &trace.activations[..trace.activations.len() - 1] {
            assert!(act.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 1).unwrap();
        let input = Tensor::filled(vec![1, 8, 8], 0.5f32);
        assert!(ann_forward(&net, &params, &input).is_err());
    }

    #[test]
    fn handcrafted_network_classifies_by_brightness() {
        // A 1-layer linear network that separates bright from dark images.
        let net = NetworkSpec::new("brightness", vec![4], vec![LayerSpec::linear(4, 2)]).unwrap();
        let weight = Tensor::from_vec(
            vec![2, 4],
            vec![1.0f32, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0],
        )
        .unwrap();
        let bias = Tensor::filled(vec![2], 0.0f32);
        let params = Parameters::new(&net, vec![Some(LayerParameters { weight, bias })]).unwrap();
        let bright = Tensor::filled(vec![4], 1.0f32);
        let dark = Tensor::filled(vec![4], -1.0f32);
        assert_eq!(predict(&net, &params, &bright).unwrap(), 0);
        assert_eq!(predict(&net, &params, &dark).unwrap(), 1);
        let acc = evaluate(&net, &params, vec![(&bright, 0), (&dark, 1)]).unwrap();
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn evaluate_empty_iterator_is_zero() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 1).unwrap();
        let acc = evaluate(&net, &params, std::iter::empty()).unwrap();
        assert_eq!(acc, 0.0);
    }
}
