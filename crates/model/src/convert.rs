//! ANN-to-SNN conversion with radix encoding.
//!
//! The paper obtains its SNN models by training an equivalent ANN and
//! transferring the parameters (Section IV-A, reference \[14\]).  Conversion
//! involves three steps, all implemented here:
//!
//! 1. **Weight quantization** — the floating-point weights are quantized to
//!    3-bit symmetric codes ([`crate::params::QuantizedParameters`]).
//! 2. **Activation calibration** — the ANN is run over a calibration set to
//!    record the maximum post-ReLU activation of every layer
//!    ([`CalibrationStats`]).  These maxima define the dynamic range each
//!    layer's `T`-bit radix code has to cover.
//! 3. **Requantization-scale derivation** — for every weighted layer a
//!    scale is computed that maps the integer accumulator back onto the
//!    next layer's `T`-bit level grid, and biases are pre-scaled into
//!    accumulator units.  The result is an [`SnnModel`].

use crate::params::{Parameters, QuantizedParameters};
use crate::snn::{SnnLayer, SnnModel};
use crate::{forward, LayerSpec, ModelError, NetworkSpec, Result};
use serde::{Deserialize, Serialize};
use snn_tensor::Tensor;

/// Maximum post-ReLU activation observed per layer during calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationStats {
    layer_max: Vec<f32>,
}

impl CalibrationStats {
    /// Runs the ANN over the calibration samples and records per-layer
    /// activation maxima.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn collect<'a, I>(net: &NetworkSpec, params: &Parameters, samples: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a Tensor<f32>>,
    {
        let mut layer_max = vec![0.0f32; net.layers().len()];
        let mut any = false;
        for input in samples {
            any = true;
            let trace = forward::ann_forward(net, params, input)?;
            for (max, act) in layer_max.iter_mut().zip(trace.activations.iter()) {
                let m = act.iter().fold(0.0f32, |acc, &v| acc.max(v));
                if m > *max {
                    *max = m;
                }
            }
        }
        if !any {
            return Err(ModelError::InvalidNetwork {
                context: "calibration requires at least one sample".to_string(),
            });
        }
        Ok(CalibrationStats { layer_max })
    }

    /// Builds calibration statistics from externally supplied per-layer
    /// maxima (useful for tests or when activations are known analytically).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParameterMismatch`] if the length differs from
    /// the network depth.
    pub fn from_layer_maxima(net: &NetworkSpec, layer_max: Vec<f32>) -> Result<Self> {
        if layer_max.len() != net.layers().len() {
            return Err(ModelError::ParameterMismatch {
                context: format!(
                    "expected {} layer maxima, got {}",
                    net.layers().len(),
                    layer_max.len()
                ),
            });
        }
        Ok(CalibrationStats { layer_max })
    }

    /// The recorded per-layer maxima.
    pub fn layer_max(&self) -> &[f32] {
        &self.layer_max
    }
}

/// Options controlling the ANN-to-SNN conversion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConversionConfig {
    /// Weight precision in bits (3 in the paper).
    pub weight_bits: u8,
    /// Spike-train length `T`.
    pub time_steps: usize,
}

impl Default for ConversionConfig {
    fn default() -> Self {
        ConversionConfig {
            weight_bits: 3,
            time_steps: 4,
        }
    }
}

/// Converts a trained ANN into a radix-encoded SNN.
///
/// `calibration` should be produced from a representative subset of the
/// training data ([`CalibrationStats::collect`]).
///
/// # Errors
///
/// Returns an error when the parameters do not match the network or
/// quantization fails.
pub fn convert(
    net: &NetworkSpec,
    params: &Parameters,
    calibration: &CalibrationStats,
    config: ConversionConfig,
) -> Result<SnnModel> {
    if calibration.layer_max.len() != net.layers().len() {
        return Err(ModelError::ParameterMismatch {
            context: "calibration statistics do not match the network depth".to_string(),
        });
    }
    let quantized = QuantizedParameters::quantize(params, config.weight_bits)?;
    let max_level = ((1i64 << config.time_steps) - 1) as f32;
    let last_layer = net.layers().len() - 1;

    let mut snn_layers = Vec::with_capacity(net.layers().len());
    // Dynamic range of the *input* to the current layer; network inputs are
    // normalised to [0, 1].
    let mut in_act_max = 1.0f32;

    for (i, layer) in net.layers().iter().enumerate() {
        match *layer {
            LayerSpec::Conv2d {
                stride, padding, ..
            } => {
                let qp = quantized
                    .layer(i)
                    .ok_or_else(|| ModelError::ParameterMismatch {
                        context: format!("layer {i} is missing quantized parameters"),
                    })?;
                let w_scale = qp.weight.scale();
                let out_act_max = effective_max(calibration.layer_max[i]);
                let is_output = i == last_layer;
                let requant = if is_output {
                    None
                } else {
                    Some(w_scale * in_act_max / out_act_max)
                };
                let bias_acc = scale_bias(&qp.bias, w_scale, in_act_max, max_level);
                snn_layers.push(SnnLayer::Conv {
                    weight_codes: qp.weight.codes().map(|&c| c as i64),
                    bias_acc,
                    stride,
                    padding,
                    requant,
                });
                if !is_output {
                    in_act_max = out_act_max;
                }
            }
            LayerSpec::Linear { .. } => {
                let qp = quantized
                    .layer(i)
                    .ok_or_else(|| ModelError::ParameterMismatch {
                        context: format!("layer {i} is missing quantized parameters"),
                    })?;
                let w_scale = qp.weight.scale();
                let out_act_max = effective_max(calibration.layer_max[i]);
                let is_output = i == last_layer;
                let requant = if is_output {
                    None
                } else {
                    Some(w_scale * in_act_max / out_act_max)
                };
                let bias_acc = scale_bias(&qp.bias, w_scale, in_act_max, max_level);
                snn_layers.push(SnnLayer::Linear {
                    weight_codes: qp.weight.codes().map(|&c| c as i64),
                    bias_acc,
                    requant,
                });
                if !is_output {
                    in_act_max = out_act_max;
                }
            }
            LayerSpec::Pool { kind, window } => {
                snn_layers.push(SnnLayer::Pool { kind, window });
                // Average/max pooling keeps the activation range; the
                // integer average truncates, which only shrinks it.
            }
            LayerSpec::Flatten => snn_layers.push(SnnLayer::Flatten),
        }
    }

    SnnModel::new(
        net.clone(),
        snn_layers,
        config.time_steps,
        config.weight_bits,
    )
}

/// Avoids divide-by-zero for layers whose calibration maximum is zero
/// (completely dead layers).
fn effective_max(max: f32) -> f32 {
    if max <= f32::EPSILON {
        1.0
    } else {
        max
    }
}

/// Pre-scales floating-point biases into integer accumulator units:
/// `bias_acc = round(bias * max_level / (w_scale * in_act_max))`.
fn scale_bias(bias: &Tensor<f32>, w_scale: f32, in_act_max: f32, max_level: f32) -> Tensor<i64> {
    bias.map(|&b| {
        let denom = w_scale * in_act_max;
        if denom.abs() <= f32::EPSILON {
            0
        } else {
            ((b * max_level / denom) as f64).round() as i64
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Parameters;
    use crate::zoo;
    use snn_tensor::Tensor;

    fn calib_inputs(n: usize, shape: &[usize]) -> Vec<Tensor<f32>> {
        (0..n)
            .map(|i| Tensor::filled(shape.to_vec(), (i + 1) as f32 / n as f32))
            .collect()
    }

    #[test]
    fn calibration_records_per_layer_maxima() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 3).unwrap();
        let inputs = calib_inputs(4, &[1, 12, 12]);
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        assert_eq!(stats.layer_max().len(), net.layers().len());
        // Post-ReLU maxima are non-negative.
        assert!(stats.layer_max().iter().all(|&m| m >= 0.0));
    }

    #[test]
    fn calibration_requires_samples() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 3).unwrap();
        assert!(CalibrationStats::collect(&net, &params, std::iter::empty()).is_err());
    }

    #[test]
    fn from_layer_maxima_checks_length() {
        let net = zoo::tiny_cnn();
        assert!(CalibrationStats::from_layer_maxima(&net, vec![1.0; 2]).is_err());
        assert!(CalibrationStats::from_layer_maxima(&net, vec![1.0; net.layers().len()]).is_ok());
    }

    #[test]
    fn convert_produces_layer_per_spec_layer() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 3).unwrap();
        let inputs = calib_inputs(4, &[1, 12, 12]);
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let model = convert(&net, &params, &stats, ConversionConfig::default()).unwrap();
        assert_eq!(model.layers().len(), net.layers().len());
        assert_eq!(model.time_steps(), 4);
        assert_eq!(model.weight_bits(), 3);
    }

    #[test]
    fn output_layer_has_no_requant() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 3).unwrap();
        let inputs = calib_inputs(2, &[1, 12, 12]);
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let model = convert(&net, &params, &stats, ConversionConfig::default()).unwrap();
        match model.layers().last().unwrap() {
            SnnLayer::Linear { requant, .. } => assert!(requant.is_none()),
            other => panic!("expected linear output layer, got {other:?}"),
        }
        // Hidden weighted layers do have a requant scale.
        match &model.layers()[0] {
            SnnLayer::Conv { requant, .. } => assert!(requant.is_some()),
            other => panic!("expected conv first layer, got {other:?}"),
        }
    }

    #[test]
    fn converted_snn_agrees_with_ann_on_predictions() {
        // With sufficient time steps and weight bits, the SNN should almost
        // always agree with the ANN it was converted from.
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 11).unwrap();
        let inputs = calib_inputs(6, &[1, 12, 12]);
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let config = ConversionConfig {
            weight_bits: 8,
            time_steps: 10,
        };
        let snn = convert(&net, &params, &stats, config).unwrap();
        let mut agreements = 0usize;
        for input in &inputs {
            let ann_pred = forward::predict(&net, &params, input).unwrap();
            let snn_pred = snn.predict(input).unwrap();
            if ann_pred == snn_pred {
                agreements += 1;
            }
        }
        assert!(
            agreements >= inputs.len() - 1,
            "only {agreements}/{} predictions agreed",
            inputs.len()
        );
    }

    #[test]
    fn quantization_error_grows_as_time_steps_shrink() {
        // Fewer time steps -> coarser activation grid -> the SNN diverges
        // further from the ANN logits.  We measure divergence via the
        // fraction of mismatched predictions over random-ish inputs.
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 2).unwrap();
        let inputs: Vec<Tensor<f32>> = (0..8)
            .map(|i| {
                let v: Vec<f32> = (0..144)
                    .map(|j| ((i * 37 + j * 13) % 100) as f32 / 100.0)
                    .collect();
                Tensor::from_vec(vec![1, 12, 12], v).unwrap()
            })
            .collect();
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let mismatch_rate = |steps: usize| -> f32 {
            let cfg = ConversionConfig {
                weight_bits: 3,
                time_steps: steps,
            };
            let snn = convert(&net, &params, &stats, cfg).unwrap();
            let mismatches = inputs
                .iter()
                .filter(|input| {
                    forward::predict(&net, &params, input).unwrap() != snn.predict(input).unwrap()
                })
                .count();
            mismatches as f32 / inputs.len() as f32
        };
        // Not strictly monotone sample-by-sample, but 10 steps should never
        // be worse than 1 step on the same inputs.
        assert!(mismatch_rate(10) <= mismatch_rate(1));
    }
}
