//! Floating-point and quantized network parameters.

use crate::{LayerSpec, ModelError, NetworkSpec, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use snn_tensor::{quant::QuantizedTensor, Tensor};

/// Weights and biases of a single weighted layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerParameters {
    /// Convolution kernels `[O, C, K, K]` or linear weights `[O, N]`.
    pub weight: Tensor<f32>,
    /// Per-output-channel biases `[O]`.
    pub bias: Tensor<f32>,
}

/// All floating-point parameters of a network, indexed by layer.
///
/// Non-weighted layers (pooling, flatten) hold `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parameters {
    layers: Vec<Option<LayerParameters>>,
}

impl Parameters {
    /// Creates parameters from a per-layer vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParameterMismatch`] when the vector length does
    /// not match the network depth or a weighted layer is missing
    /// parameters (and vice versa), or a weight/bias shape is wrong.
    pub fn new(net: &NetworkSpec, layers: Vec<Option<LayerParameters>>) -> Result<Self> {
        if layers.len() != net.layers().len() {
            return Err(ModelError::ParameterMismatch {
                context: format!(
                    "expected {} layer entries, got {}",
                    net.layers().len(),
                    layers.len()
                ),
            });
        }
        for (i, (spec, params)) in net.layers().iter().zip(layers.iter()).enumerate() {
            match (spec.has_weights(), params) {
                (true, Some(p)) => {
                    let expected = Self::weight_shape(spec);
                    if p.weight.shape().dims() != expected.as_slice() {
                        return Err(ModelError::ParameterMismatch {
                            context: format!(
                                "layer {i}: weight shape {:?} does not match expected {:?}",
                                p.weight.shape().dims(),
                                expected
                            ),
                        });
                    }
                    let out = expected[0];
                    if p.bias.shape().dims() != [out] {
                        return Err(ModelError::ParameterMismatch {
                            context: format!(
                                "layer {i}: bias shape {:?} does not match [{out}]",
                                p.bias.shape().dims()
                            ),
                        });
                    }
                }
                (true, None) => {
                    return Err(ModelError::ParameterMismatch {
                        context: format!("layer {i} requires weights but none were provided"),
                    })
                }
                (false, Some(_)) => {
                    return Err(ModelError::ParameterMismatch {
                        context: format!("layer {i} does not take weights"),
                    })
                }
                (false, None) => {}
            }
        }
        Ok(Parameters { layers })
    }

    /// The expected weight-tensor shape of a weighted layer.
    fn weight_shape(spec: &LayerSpec) -> Vec<usize> {
        match *spec {
            LayerSpec::Conv2d {
                in_channels,
                out_channels,
                kernel,
                ..
            } => vec![out_channels, in_channels, kernel, kernel],
            LayerSpec::Linear {
                in_features,
                out_features,
            } => vec![out_features, in_features],
            _ => vec![],
        }
    }

    /// He/Kaiming-style random initialisation, deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Propagates tensor-construction errors (which cannot occur for valid
    /// network specs).
    pub fn he_init(net: &NetworkSpec, seed: u64) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(net.layers().len());
        for spec in net.layers() {
            if !spec.has_weights() {
                layers.push(None);
                continue;
            }
            let shape = Self::weight_shape(spec);
            let fan_in: usize = shape[1..].iter().product();
            let std = (2.0 / fan_in as f32).sqrt();
            let volume: usize = shape.iter().product();
            let data: Vec<f32> = (0..volume)
                .map(|_| {
                    // Box-Muller transform for a normal sample.
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                    n * std
                })
                .collect();
            let weight = Tensor::from_vec(shape.clone(), data)?;
            let bias = Tensor::filled(vec![shape[0]], 0.0f32);
            layers.push(Some(LayerParameters { weight, bias }));
        }
        Parameters::new(net, layers)
    }

    /// Per-layer parameter storage (indexed like the network layers).
    pub fn layer_weights(&self) -> &[Option<LayerParameters>] {
        &self.layers
    }

    /// Mutable access to the per-layer parameters (used by the trainer).
    pub fn layer_weights_mut(&mut self) -> &mut [Option<LayerParameters>] {
        &mut self.layers
    }

    /// Parameters of layer `index`, if that layer has any.
    pub fn layer(&self, index: usize) -> Option<&LayerParameters> {
        self.layers.get(index).and_then(|p| p.as_ref())
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .flatten()
            .map(|p| p.weight.len() + p.bias.len())
            .sum()
    }
}

/// Quantized parameters of a single weighted layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLayerParameters {
    /// Quantized kernel/weight codes with their scale.
    pub weight: QuantizedTensor,
    /// Floating-point biases (folded into the accumulator during
    /// ANN-to-SNN conversion).
    pub bias: Tensor<f32>,
}

/// All quantized parameters of a network, indexed by layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedParameters {
    layers: Vec<Option<QuantizedLayerParameters>>,
    bits: u8,
}

impl QuantizedParameters {
    /// Quantizes floating-point parameters to `bits`-bit symmetric codes
    /// (3 bits in the paper).
    ///
    /// # Errors
    ///
    /// Propagates quantization errors (invalid bit widths).
    pub fn quantize(params: &Parameters, bits: u8) -> Result<Self> {
        let layers = params
            .layer_weights()
            .iter()
            .map(|p| {
                p.as_ref()
                    .map(|lp| {
                        Ok(QuantizedLayerParameters {
                            weight: QuantizedTensor::quantize(&lp.weight, bits)?,
                            bias: lp.bias.clone(),
                        })
                    })
                    .transpose()
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(QuantizedParameters { layers, bits })
    }

    /// Bit width of the weight codes.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Per-layer quantized parameters.
    pub fn layer_weights(&self) -> &[Option<QuantizedLayerParameters>] {
        &self.layers
    }

    /// Quantized parameters of layer `index`, if that layer has any.
    pub fn layer(&self, index: usize) -> Option<&QuantizedLayerParameters> {
        self.layers.get(index).and_then(|p| p.as_ref())
    }

    /// Reconstructs approximate floating-point parameters (for measuring
    /// the accuracy cost of quantization).
    pub fn dequantize(&self, net: &NetworkSpec) -> Result<Parameters> {
        let layers = self
            .layers
            .iter()
            .map(|p| {
                p.as_ref().map(|qp| LayerParameters {
                    weight: qp.weight.dequantize(),
                    bias: qp.bias.clone(),
                })
            })
            .collect();
        Parameters::new(net, layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn he_init_produces_matching_shapes() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 7).unwrap();
        assert_eq!(params.parameter_count(), net.parameter_count());
        let conv = params.layer(0).unwrap();
        assert_eq!(conv.weight.shape().dims(), &[4, 1, 3, 3]);
        assert_eq!(conv.bias.shape().dims(), &[4]);
        assert!(params.layer(1).is_none()); // pooling layer
    }

    #[test]
    fn he_init_is_deterministic() {
        let net = zoo::tiny_cnn();
        let a = Parameters::he_init(&net, 3).unwrap();
        let b = Parameters::he_init(&net, 3).unwrap();
        assert_eq!(a, b);
        let c = Parameters::he_init(&net, 4).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn he_init_scale_tracks_fan_in() {
        let net = zoo::lenet5();
        let params = Parameters::he_init(&net, 1).unwrap();
        // First conv has fan-in 25; weights should be small but non-zero.
        let w = &params.layer(0).unwrap().weight;
        let std: f32 = (w.iter().map(|v| v * v).sum::<f32>() / w.len() as f32).sqrt();
        let expected = (2.0f32 / 25.0).sqrt();
        assert!(
            (std - expected).abs() < expected * 0.5,
            "std {std} too far from {expected}"
        );
    }

    #[test]
    fn new_rejects_wrong_layer_count() {
        let net = zoo::tiny_cnn();
        assert!(matches!(
            Parameters::new(&net, vec![]),
            Err(ModelError::ParameterMismatch { .. })
        ));
    }

    #[test]
    fn new_rejects_missing_weights() {
        let net = zoo::tiny_cnn();
        let layers = vec![None; net.layers().len()];
        assert!(matches!(
            Parameters::new(&net, layers),
            Err(ModelError::ParameterMismatch { .. })
        ));
    }

    #[test]
    fn quantization_respects_bit_width() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 5).unwrap();
        let q = QuantizedParameters::quantize(&params, 3).unwrap();
        assert_eq!(q.bits(), 3);
        for layer in q.layer_weights().iter().flatten() {
            assert!(layer.weight.codes().iter().all(|&c| c.abs() <= 3));
        }
    }

    #[test]
    fn dequantize_roundtrip_has_bounded_error() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 5).unwrap();
        let q = QuantizedParameters::quantize(&params, 8).unwrap();
        let deq = q.dequantize(&net).unwrap();
        for (orig, back) in params
            .layer_weights()
            .iter()
            .flatten()
            .zip(deq.layer_weights().iter().flatten())
        {
            for (a, b) in orig.weight.iter().zip(back.weight.iter()) {
                assert!((a - b).abs() < 0.05, "|{a} - {b}| too large");
            }
        }
    }
}
