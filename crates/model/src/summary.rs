//! Human-readable network summaries: per-layer shapes, parameter counts and
//! multiply-accumulate (here: accumulate-only) operation counts.
//!
//! The summary is what a user consults to decide how to configure the
//! accelerator — which kernel sizes occur (one convolution-unit type each),
//! how wide the widest output row is (the `X` dimension of the adder
//! array), and where the parameters and operations concentrate.

use crate::{LayerSpec, NetworkSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary of a single layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Layer index.
    pub index: usize,
    /// Layer notation (`6C5`, `P2`, ...).
    pub notation: String,
    /// Output shape.
    pub output_shape: Vec<usize>,
    /// Trainable parameters.
    pub parameters: usize,
    /// Accumulate operations per inference per time step.
    pub accumulate_ops: u64,
}

/// Summary of a whole network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Network name.
    pub name: String,
    /// Input shape.
    pub input_shape: Vec<usize>,
    /// Per-layer rows.
    pub layers: Vec<LayerSummary>,
}

impl NetworkSummary {
    /// Builds the summary of a network.
    pub fn of(net: &NetworkSpec) -> Self {
        let layers = net
            .layers()
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                let output_shape = net.layer_output_shape(i).to_vec();
                let outputs: usize = output_shape.iter().product();
                let accumulate_ops = match *layer {
                    LayerSpec::Conv2d {
                        in_channels,
                        kernel,
                        ..
                    } => (outputs * in_channels * kernel * kernel) as u64,
                    LayerSpec::Linear { in_features, .. } => (outputs * in_features) as u64,
                    LayerSpec::Pool { window, .. } => (outputs * window * window) as u64,
                    LayerSpec::Flatten => 0,
                };
                LayerSummary {
                    index: i,
                    notation: layer.notation(),
                    output_shape,
                    parameters: layer.parameter_count(),
                    accumulate_ops,
                }
            })
            .collect();
        NetworkSummary {
            name: net.name().to_string(),
            input_shape: net.input_shape().to_vec(),
            layers,
        }
    }

    /// Total trainable parameters.
    pub fn total_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.parameters).sum()
    }

    /// Total accumulate operations per inference per time step.
    pub fn total_accumulate_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.accumulate_ops).sum()
    }

    /// The widest output row of any convolution or pooling layer — the
    /// minimum `X` for which the adder array avoids column tiling.
    pub fn widest_output_row(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.output_shape.len() == 3)
            .map(|l| l.output_shape[2])
            .max()
            .unwrap_or(0)
    }

    /// Index of the layer with the most parameters (dominates DRAM traffic
    /// for models that do not fit on chip).
    pub fn heaviest_layer(&self) -> Option<usize> {
        self.layers
            .iter()
            .max_by_key(|l| l.parameters)
            .map(|l| l.index)
    }
}

impl fmt::Display for NetworkSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (input {:?})", self.name, self.input_shape)?;
        writeln!(
            f,
            "{:<4} {:<10} {:<16} {:>12} {:>14}",
            "#", "layer", "output", "params", "acc ops/step"
        )?;
        for layer in &self.layers {
            writeln!(
                f,
                "{:<4} {:<10} {:<16} {:>12} {:>14}",
                layer.index,
                layer.notation,
                format!("{:?}", layer.output_shape),
                layer.parameters,
                layer.accumulate_ops
            )?;
        }
        writeln!(
            f,
            "total: {} parameters, {} accumulate ops per time step",
            self.total_parameters(),
            self.total_accumulate_ops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn lenet_summary_matches_known_figures() {
        let summary = NetworkSummary::of(&zoo::lenet5());
        assert_eq!(summary.layers.len(), 9);
        assert_eq!(summary.total_parameters(), zoo::lenet5().parameter_count());
        // LeNet-5's widest feature-map row is the 28-wide first conv output.
        assert_eq!(summary.widest_output_row(), 28);
        // The first conv layer performs 6*28*28*25 accumulations per step.
        assert_eq!(summary.layers[0].accumulate_ops, 6 * 28 * 28 * 25);
    }

    #[test]
    fn vgg_heaviest_layer_is_the_first_big_fc() {
        let net = zoo::vgg11(100);
        let summary = NetworkSummary::of(&net);
        let heaviest = summary.heaviest_layer().unwrap();
        // The 4096x4096 fully-connected layer holds the most parameters.
        assert_eq!(summary.layers[heaviest].parameters, 4096 * 4096 + 4096);
    }

    #[test]
    fn flatten_contributes_no_ops_or_params() {
        let summary = NetworkSummary::of(&zoo::tiny_cnn());
        let flatten = summary
            .layers
            .iter()
            .find(|l| l.notation == "flatten")
            .unwrap();
        assert_eq!(flatten.parameters, 0);
        assert_eq!(flatten.accumulate_ops, 0);
    }

    #[test]
    fn display_lists_every_layer_and_totals() {
        let summary = NetworkSummary::of(&zoo::fang_cnn());
        let text = summary.to_string();
        assert!(text.contains("32C3"));
        assert!(text.contains("total:"));
        assert!(text.lines().count() >= summary.layers.len() + 2);
    }

    #[test]
    fn consistent_with_snn_synaptic_ops() {
        // The summary's conv+linear accumulate count must equal the
        // SnnModel::synaptic_ops_per_step figure (pooling excluded there).
        let net = zoo::tiny_cnn();
        let summary = NetworkSummary::of(&net);
        let conv_linear_ops: u64 = summary
            .layers
            .iter()
            .zip(net.layers())
            .filter(|(_, spec)| spec.has_weights())
            .map(|(l, _)| l.accumulate_ops)
            .sum();
        // Build a converted model to compare against.
        use crate::convert::{convert, CalibrationStats, ConversionConfig};
        use crate::params::Parameters;
        use snn_tensor::Tensor;
        let params = Parameters::he_init(&net, 1).unwrap();
        let input = Tensor::filled(vec![1, 12, 12], 0.5f32);
        let calib = CalibrationStats::collect(&net, &params, [&input]).unwrap();
        let model = convert(&net, &params, &calib, ConversionConfig::default()).unwrap();
        assert_eq!(model.synaptic_ops_per_step(), conv_linear_ops);
    }
}
