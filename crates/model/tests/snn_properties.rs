//! Property-based tests for the ANN-to-SNN conversion and the functional
//! radix SNN.

use proptest::prelude::*;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::{LayerParameters, Parameters};
use snn_model::snn::{requantize, SnnLayer};
use snn_model::{LayerSpec, NetworkSpec};
use snn_tensor::Tensor;

/// Builds a two-layer MLP with weights derived from a seed vector.
fn mlp(inputs: usize, hidden: usize, outputs: usize, seed: &[f32]) -> (NetworkSpec, Parameters) {
    let net = NetworkSpec::new(
        "mlp",
        vec![inputs],
        vec![
            LayerSpec::linear(inputs, hidden),
            LayerSpec::linear(hidden, outputs),
        ],
    )
    .expect("valid MLP");
    let take = |n: usize, offset: usize| -> Vec<f32> {
        (0..n).map(|i| seed[(offset + i) % seed.len()]).collect()
    };
    let params = Parameters::new(
        &net,
        vec![
            Some(LayerParameters {
                weight: Tensor::from_vec(vec![hidden, inputs], take(hidden * inputs, 0)).unwrap(),
                bias: Tensor::from_vec(vec![hidden], take(hidden, 3)).unwrap(),
            }),
            Some(LayerParameters {
                weight: Tensor::from_vec(vec![outputs, hidden], take(outputs * hidden, 5)).unwrap(),
                bias: Tensor::from_vec(vec![outputs], take(outputs, 11)).unwrap(),
            }),
        ],
    )
    .expect("valid parameters");
    (net, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Requantization always lands inside the representable level range and
    /// is monotone in its input.
    #[test]
    fn requantize_is_clamped_and_monotone(
        a in -1_000_000i64..1_000_000,
        b in -1_000_000i64..1_000_000,
        scale in 0.0001f32..10.0,
        time_steps in 1usize..10,
    ) {
        let max_level = (1i64 << time_steps) - 1;
        let qa = requantize(a, scale, max_level);
        let qb = requantize(b, scale, max_level);
        prop_assert!((0..=max_level).contains(&qa));
        prop_assert!((0..=max_level).contains(&qb));
        if a <= b {
            prop_assert!(qa <= qb);
        }
    }

    /// All hidden activations of a converted model stay within the T-bit
    /// level range — the invariant that lets the hardware store them in the
    /// ping-pong buffers as radix spike trains.
    #[test]
    fn hidden_activations_stay_within_level_range(
        weights in prop::collection::vec(-1.0f32..1.0, 64),
        pixels in prop::collection::vec(0.0f32..1.0, 6),
        time_steps in 1usize..8,
    ) {
        let (net, params) = mlp(6, 5, 3, &weights);
        let input = Tensor::from_vec(vec![6], pixels).unwrap();
        let calibration = CalibrationStats::collect(&net, &params, [&input]).unwrap();
        let model = convert(
            &net,
            &params,
            &calibration,
            ConversionConfig { weight_bits: 3, time_steps },
        )
        .unwrap();
        let trace = model.forward(&input).unwrap();
        let max_level = model.max_level();
        // Every layer except the classifier output is a level tensor.
        for act in &trace.activations[..trace.activations.len() - 1] {
            prop_assert!(act.iter().all(|&v| (0..=max_level).contains(&v)));
        }
    }

    /// Conversion is deterministic: converting twice yields identical
    /// models and identical predictions.
    #[test]
    fn conversion_is_deterministic(
        weights in prop::collection::vec(-1.0f32..1.0, 64),
        pixels in prop::collection::vec(0.0f32..1.0, 6),
    ) {
        let (net, params) = mlp(6, 4, 3, &weights);
        let input = Tensor::from_vec(vec![6], pixels).unwrap();
        let calibration = CalibrationStats::collect(&net, &params, [&input]).unwrap();
        let cfg = ConversionConfig { weight_bits: 3, time_steps: 5 };
        let a = convert(&net, &params, &calibration, cfg).unwrap();
        let b = convert(&net, &params, &calibration, cfg).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.predict(&input).unwrap(), b.predict(&input).unwrap());
    }

    /// Quantized weight codes in every converted layer respect the
    /// configured bit width.
    #[test]
    fn converted_weight_codes_respect_bit_width(
        weights in prop::collection::vec(-2.0f32..2.0, 64),
        bits in 2u8..6,
    ) {
        let (net, params) = mlp(6, 4, 3, &weights);
        let input = Tensor::filled(vec![6], 0.5f32);
        let calibration = CalibrationStats::collect(&net, &params, [&input]).unwrap();
        let model = convert(
            &net,
            &params,
            &calibration,
            ConversionConfig { weight_bits: bits, time_steps: 4 },
        )
        .unwrap();
        let max_code = ((1i64 << (bits - 1)) - 1).abs();
        for layer in model.layers() {
            if let SnnLayer::Linear { weight_codes, .. } = layer {
                prop_assert!(weight_codes.iter().all(|&c| c.abs() <= max_code));
            }
        }
    }

    /// Scaling the ANN input by a constant in (0, 1] never changes which
    /// class wins by more than the quantization can explain — specifically,
    /// the all-zero input always produces the bias-only logits.
    #[test]
    fn silent_input_produces_bias_only_logits(
        weights in prop::collection::vec(-1.0f32..1.0, 64),
        time_steps in 1usize..8,
    ) {
        let (net, params) = mlp(6, 4, 3, &weights);
        let calib_input = Tensor::filled(vec![6], 1.0f32);
        let calibration = CalibrationStats::collect(&net, &params, [&calib_input]).unwrap();
        let model = convert(
            &net,
            &params,
            &calibration,
            ConversionConfig { weight_bits: 3, time_steps },
        )
        .unwrap();
        let zero = Tensor::filled(vec![6], 0.0f32);
        let trace = model.forward(&zero).unwrap();
        // With no spikes, the first layer's accumulator is exactly its bias.
        if let SnnLayer::Linear { bias_acc, requant, .. } = &model.layers()[0] {
            let expected: Vec<i64> = bias_acc
                .iter()
                .map(|&b| match requant {
                    Some(r) => requantize(b, *r, model.max_level()),
                    None => b,
                })
                .collect();
            prop_assert_eq!(trace.activations[0].as_slice(), &expected[..]);
        } else {
            prop_assert!(false, "first layer should be linear");
        }
    }
}
