//! Memory management: ping-pong activation buffers, weight memory and the
//! external DRAM model (Section III-C of the paper).
//!
//! Activations are kept entirely on chip.  Two memory blocks exist, one for
//! two-dimensional feature maps (convolution/pooling stages) and one for
//! one-dimensional activations (fully-connected stages); each is a
//! *ping-pong* pair so a layer can read its input from one half while
//! writing its output to the other.  Convolution kernels and weights either
//! fit entirely in on-chip block RAM or are fetched from external DRAM
//! before each layer.

use crate::config::{AcceleratorConfig, MemoryOption};
use crate::{AccelError, Result};
use serde::{Deserialize, Serialize};
use snn_model::NetworkSpec;
use snn_tensor::Tensor;

/// Capacity of one Xilinx-style block RAM in bits (36 kb).
pub const BRAM36_BITS: u64 = 36 * 1024;

/// Converts a bit count into 36 kb block-RAM blocks.
pub fn bits_to_bram36(bits: u64) -> u64 {
    bits.div_ceil(BRAM36_BITS)
}

/// Sizing of the on-chip activation buffers.
///
/// The width and height of the buffers are chosen so that the activations
/// of every relevant layer fit while the size is minimal — here that means
/// sizing each ping/pong half for the largest feature map it will ever hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationBufferPlan {
    /// Bits in each half of the two-dimensional ping-pong buffer.
    pub buffer_2d_bits: u64,
    /// Bits in each half of the one-dimensional ping-pong buffer.
    pub buffer_1d_bits: u64,
    /// Spike-train length the plan was computed for.
    pub time_steps: usize,
}

impl ActivationBufferPlan {
    /// Computes buffer sizes for a network and spike-train length.
    ///
    /// Every activation element is stored as its `T`-bit radix code.
    pub fn for_network(net: &NetworkSpec, time_steps: usize) -> Self {
        let mut max_2d = net.input_shape().iter().product::<usize>();
        let mut max_1d = 0usize;
        for i in 0..net.layers().len() {
            let out: usize = net.layer_output_shape(i).iter().product();
            if net.layer_output_shape(i).len() == 3 {
                max_2d = max_2d.max(out);
            } else {
                max_1d = max_1d.max(out);
            }
        }
        ActivationBufferPlan {
            buffer_2d_bits: (max_2d * time_steps) as u64,
            buffer_1d_bits: (max_1d * time_steps) as u64,
            time_steps,
        }
    }

    /// Total on-chip bits for both ping-pong pairs (×2 for ping and pong).
    pub fn total_bits(&self) -> u64 {
        2 * (self.buffer_2d_bits + self.buffer_1d_bits)
    }

    /// Number of 36 kb BRAM blocks needed for the activation buffers.
    pub fn bram36(&self) -> u64 {
        bits_to_bram36(2 * self.buffer_2d_bits) + bits_to_bram36(2 * self.buffer_1d_bits)
    }
}

/// Sizing and placement of the weight memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightMemoryPlan {
    /// Total parameter storage in bits at the configured weight precision.
    pub total_weight_bits: u64,
    /// Largest single layer's weights in bits (the DRAM staging buffer must
    /// hold one layer at a time).
    pub max_layer_weight_bits: u64,
    /// Where the weights live.
    pub option: MemoryOption,
}

impl WeightMemoryPlan {
    /// Computes the weight-memory plan for a network.
    pub fn for_network(net: &NetworkSpec, weight_bits: u8, option: MemoryOption) -> Self {
        let mut total = 0u64;
        let mut max_layer = 0u64;
        for layer in net.layers() {
            let bits = layer.parameter_count() as u64 * weight_bits as u64;
            total += bits;
            max_layer = max_layer.max(bits);
        }
        WeightMemoryPlan {
            total_weight_bits: total,
            max_layer_weight_bits: max_layer,
            option,
        }
    }

    /// On-chip BRAM blocks used for weights: the whole model for
    /// [`MemoryOption::OnChip`], one layer's staging buffer for
    /// [`MemoryOption::Dram`].
    pub fn bram36(&self) -> u64 {
        match self.option {
            MemoryOption::OnChip => bits_to_bram36(self.total_weight_bits),
            MemoryOption::Dram => bits_to_bram36(self.max_layer_weight_bits),
        }
    }
}

/// Simple external-DRAM model: a fixed bus width per accelerator clock
/// cycle plus a per-bit transfer energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Usable bus width in bits per accelerator cycle.
    pub bus_bits: usize,
    /// Energy per transferred bit in picojoules (DDR4-class interface).
    pub energy_pj_per_bit: f64,
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel {
            bus_bits: 64,
            energy_pj_per_bit: 20.0,
        }
    }
}

impl DramModel {
    /// Creates a DRAM model matching an accelerator configuration.
    pub fn from_config(config: &AcceleratorConfig) -> Self {
        DramModel {
            bus_bits: config.dram_bus_bits,
            ..DramModel::default()
        }
    }

    /// Cycles needed to stream `bits` of parameters into the accelerator.
    pub fn transfer_cycles(&self, bits: u64) -> u64 {
        bits.div_ceil(self.bus_bits as u64)
    }

    /// Energy in microjoules for transferring `bits`.
    pub fn transfer_energy_uj(&self, bits: u64) -> f64 {
        bits as f64 * self.energy_pj_per_bit * 1e-6
    }
}

/// Which half of a ping-pong pair is currently being read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PingPongSide {
    /// The "ping" half.
    Ping,
    /// The "pong" half.
    Pong,
}

impl PingPongSide {
    /// The opposite half.
    pub fn other(self) -> Self {
        match self {
            PingPongSide::Ping => PingPongSide::Pong,
            PingPongSide::Pong => PingPongSide::Ping,
        }
    }
}

/// Runtime model of a ping-pong activation buffer pair.
///
/// Each layer reads its input activations from the *read side* and writes
/// its results to the other half; [`PingPongBuffer::swap`] then makes the
/// freshly written half the read side for the next layer.
#[derive(Debug, Clone, PartialEq)]
pub struct PingPongBuffer {
    read_side: PingPongSide,
    ping: Option<Tensor<i64>>,
    pong: Option<Tensor<i64>>,
    /// Number of completed write→swap handovers (one per executed layer).
    handovers: u64,
}

impl PingPongBuffer {
    /// Creates an empty buffer pair reading from the ping half.
    pub fn new() -> Self {
        PingPongBuffer {
            read_side: PingPongSide::Ping,
            ping: None,
            pong: None,
            handovers: 0,
        }
    }

    /// Which half the next layer reads from.
    pub fn read_side(&self) -> PingPongSide {
        self.read_side
    }

    /// Number of completed layer handovers.
    pub fn handovers(&self) -> u64 {
        self.handovers
    }

    /// Loads the initial activations (the encoded network input) into the
    /// current read half.
    pub fn load_input(&mut self, levels: Tensor<i64>) {
        match self.read_side {
            PingPongSide::Ping => self.ping = Some(levels),
            PingPongSide::Pong => self.pong = Some(levels),
        }
    }

    /// The activations the next layer should read.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] if no activations have been
    /// written yet.
    pub fn current(&self) -> Result<&Tensor<i64>> {
        let side = match self.read_side {
            PingPongSide::Ping => &self.ping,
            PingPongSide::Pong => &self.pong,
        };
        side.as_ref().ok_or_else(|| AccelError::InvalidConfig {
            context: "activation buffer read before any layer wrote it".to_string(),
        })
    }

    /// Writes a layer result into the unused half and swaps, so the next
    /// layer reads what was just written.
    pub fn write_and_swap(&mut self, levels: Tensor<i64>) {
        match self.read_side {
            PingPongSide::Ping => self.pong = Some(levels),
            PingPongSide::Pong => self.ping = Some(levels),
        }
        self.read_side = self.read_side.other();
        self.handovers += 1;
    }
}

impl Default for PingPongBuffer {
    fn default() -> Self {
        PingPongBuffer::new()
    }
}

/// Aggregate memory-traffic statistics of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryTraffic {
    /// Bits streamed from external DRAM (zero for on-chip weight storage).
    pub dram_bits: u64,
    /// On-chip activation-buffer reads (rows).
    pub activation_reads: u64,
    /// On-chip weight-memory reads (words).
    pub weight_reads: u64,
    /// On-chip activation-buffer writes (values).
    pub activation_writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::zoo;

    #[test]
    fn bram_conversion_rounds_up() {
        assert_eq!(bits_to_bram36(1), 1);
        assert_eq!(bits_to_bram36(BRAM36_BITS), 1);
        assert_eq!(bits_to_bram36(BRAM36_BITS + 1), 2);
    }

    #[test]
    fn lenet_activation_plan_is_dominated_by_first_conv_output() {
        let net = zoo::lenet5();
        let plan = ActivationBufferPlan::for_network(&net, 4);
        // Largest 2-D activation of LeNet-5 is 6x28x28 = 4704 values.
        assert_eq!(plan.buffer_2d_bits, 4704 * 4);
        // Largest 1-D activation is the flattened 120 / fc 120 = 120 values.
        assert_eq!(plan.buffer_1d_bits, 120 * 4);
        assert!(plan.total_bits() > 0);
        assert!(plan.bram36() >= 1);
    }

    #[test]
    fn buffer_grows_with_time_steps() {
        let net = zoo::lenet5();
        let p3 = ActivationBufferPlan::for_network(&net, 3);
        let p6 = ActivationBufferPlan::for_network(&net, 6);
        assert_eq!(p6.buffer_2d_bits, 2 * p3.buffer_2d_bits);
    }

    #[test]
    fn weight_plan_counts_all_parameters() {
        let net = zoo::lenet5();
        let plan = WeightMemoryPlan::for_network(&net, 3, MemoryOption::OnChip);
        assert_eq!(plan.total_weight_bits, net.parameter_count() as u64 * 3);
        assert!(plan.max_layer_weight_bits < plan.total_weight_bits);
        // On-chip option stores everything, DRAM option only one layer.
        let dram_plan = WeightMemoryPlan::for_network(&net, 3, MemoryOption::Dram);
        assert!(dram_plan.bram36() <= plan.bram36());
    }

    #[test]
    fn vgg_weights_do_not_fit_realistically_on_chip() {
        let net = zoo::vgg11(100);
        let plan = WeightMemoryPlan::for_network(&net, 3, MemoryOption::OnChip);
        // 28.5M parameters at 3 bits ≈ 85.6 Mbit — far more than the
        // ~94 Mbit total BRAM of even the largest UltraScale+ parts once
        // activations are accounted for, which is why the paper streams
        // VGG weights from DRAM.
        assert!(plan.total_weight_bits > 80_000_000);
    }

    #[test]
    fn dram_transfer_cycles_round_up() {
        let dram = DramModel {
            bus_bits: 64,
            energy_pj_per_bit: 20.0,
        };
        assert_eq!(dram.transfer_cycles(64), 1);
        assert_eq!(dram.transfer_cycles(65), 2);
        assert!(dram.transfer_energy_uj(1_000_000) > 0.0);
    }

    #[test]
    fn ping_pong_alternates_sides() {
        let mut buffer = PingPongBuffer::new();
        buffer.load_input(Tensor::filled(vec![4], 1i64));
        assert_eq!(buffer.read_side(), PingPongSide::Ping);
        assert_eq!(buffer.current().unwrap().as_slice(), &[1, 1, 1, 1]);

        buffer.write_and_swap(Tensor::filled(vec![2], 2i64));
        assert_eq!(buffer.read_side(), PingPongSide::Pong);
        assert_eq!(buffer.current().unwrap().as_slice(), &[2, 2]);

        buffer.write_and_swap(Tensor::filled(vec![1], 3i64));
        assert_eq!(buffer.read_side(), PingPongSide::Ping);
        assert_eq!(buffer.current().unwrap().as_slice(), &[3]);
        assert_eq!(buffer.handovers(), 2);
    }

    #[test]
    fn reading_an_empty_buffer_is_an_error() {
        let buffer = PingPongBuffer::new();
        assert!(buffer.current().is_err());
    }
}
