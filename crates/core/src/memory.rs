//! Memory management: ping-pong activation buffers, weight memory, the
//! external DRAM model (Section III-C of the paper) and the **tiling
//! planner** that fits deep models into a fixed activation-buffer budget.
//!
//! Activations are kept entirely on chip.  Two memory blocks exist, one for
//! two-dimensional feature maps (convolution/pooling stages) and one for
//! one-dimensional activations (fully-connected stages); each is a
//! *ping-pong* pair so a layer can read its input from one half while
//! writing its output to the other.  Convolution kernels and weights either
//! fit entirely in on-chip block RAM or are fetched from external DRAM
//! before each layer.
//!
//! # Tiled activation buffers
//!
//! Sizing the ping-pong halves for the largest feature map
//! ([`ActivationBufferPlan`]) works for LeNet-class models but not for
//! VGG-11, whose widest layer alone exceeds any realistic on-chip budget.
//! When [`crate::config::AcceleratorConfig::activation_buffer_bytes`] is
//! set, [`plan_network_tiles`] instead splits every oversized layer into
//! **row-band tiles**: the read half holds one halo-extended band of input
//! rows, the write half one band of output rows, and the bands stream
//! through the buffer pair in order.  The planner is halo-aware (a band's
//! input rows include the `kernel - stride` rows shared with its
//! neighbour), aligns convolution bands to a following pooling window so
//! fused conv → pool pairs can stream tiles, and tiles fully-connected
//! layers into lane-aligned output chunks.  Budget accounting models the
//! hardware representation: every activation element costs its `T`-bit
//! radix code, so a tile of `e` elements occupies `ceil(e * T / 8)` bytes
//! and a layer's working set is `bytes(input tile) + bytes(output tile)`.
//!
//! The execution engine consumes the plan tile by tile; the bit-plane
//! packing of [`snn_tensor::bitplane`] happens per tile, and every unit
//! counter is defined so that the per-tile values sum to exactly the
//! untiled layer's counters (property tests pin this bit-identically).

use crate::config::{AcceleratorConfig, MemoryOption};
use crate::{AccelError, Result};
use serde::{Deserialize, Serialize};
use snn_model::{LayerSpec, NetworkSpec};
use snn_tensor::Tensor;

/// Capacity of one Xilinx-style block RAM in bits (36 kb).
pub const BRAM36_BITS: u64 = 36 * 1024;

/// Converts a bit count into 36 kb block-RAM blocks.
pub fn bits_to_bram36(bits: u64) -> u64 {
    bits.div_ceil(BRAM36_BITS)
}

/// Sizing of the on-chip activation buffers.
///
/// The width and height of the buffers are chosen so that the activations
/// of every relevant layer fit while the size is minimal — here that means
/// sizing each ping/pong half for the largest feature map it will ever hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationBufferPlan {
    /// Bits in each half of the two-dimensional ping-pong buffer.
    pub buffer_2d_bits: u64,
    /// Bits in each half of the one-dimensional ping-pong buffer.
    pub buffer_1d_bits: u64,
    /// Spike-train length the plan was computed for.
    pub time_steps: usize,
}

impl ActivationBufferPlan {
    /// Computes buffer sizes for a network and spike-train length.
    ///
    /// Every activation element is stored as its `T`-bit radix code.
    pub fn for_network(net: &NetworkSpec, time_steps: usize) -> Self {
        let mut max_2d = net.input_shape().iter().product::<usize>();
        let mut max_1d = 0usize;
        for i in 0..net.layers().len() {
            let out: usize = net.layer_output_shape(i).iter().product();
            if net.layer_output_shape(i).len() == 3 {
                max_2d = max_2d.max(out);
            } else {
                max_1d = max_1d.max(out);
            }
        }
        ActivationBufferPlan {
            buffer_2d_bits: (max_2d * time_steps) as u64,
            buffer_1d_bits: (max_1d * time_steps) as u64,
            time_steps,
        }
    }

    /// Total on-chip bits for both ping-pong pairs (×2 for ping and pong).
    pub fn total_bits(&self) -> u64 {
        2 * (self.buffer_2d_bits + self.buffer_1d_bits)
    }

    /// Number of 36 kb BRAM blocks needed for the activation buffers.
    pub fn bram36(&self) -> u64 {
        bits_to_bram36(2 * self.buffer_2d_bits) + bits_to_bram36(2 * self.buffer_1d_bits)
    }
}

/// Sizing and placement of the weight memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightMemoryPlan {
    /// Total parameter storage in bits at the configured weight precision.
    pub total_weight_bits: u64,
    /// Largest single layer's weights in bits (the DRAM staging buffer must
    /// hold one layer at a time).
    pub max_layer_weight_bits: u64,
    /// Where the weights live.
    pub option: MemoryOption,
}

impl WeightMemoryPlan {
    /// Computes the weight-memory plan for a network.
    pub fn for_network(net: &NetworkSpec, weight_bits: u8, option: MemoryOption) -> Self {
        let mut total = 0u64;
        let mut max_layer = 0u64;
        for layer in net.layers() {
            let bits = layer.parameter_count() as u64 * weight_bits as u64;
            total += bits;
            max_layer = max_layer.max(bits);
        }
        WeightMemoryPlan {
            total_weight_bits: total,
            max_layer_weight_bits: max_layer,
            option,
        }
    }

    /// On-chip BRAM blocks used for weights: the whole model for
    /// [`MemoryOption::OnChip`], one layer's staging buffer for
    /// [`MemoryOption::Dram`].
    pub fn bram36(&self) -> u64 {
        match self.option {
            MemoryOption::OnChip => bits_to_bram36(self.total_weight_bits),
            MemoryOption::Dram => bits_to_bram36(self.max_layer_weight_bits),
        }
    }
}

/// Simple external-DRAM model: a fixed bus width per accelerator clock
/// cycle plus a per-bit transfer energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Usable bus width in bits per accelerator cycle.
    pub bus_bits: usize,
    /// Energy per transferred bit in picojoules (DDR4-class interface).
    pub energy_pj_per_bit: f64,
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel {
            bus_bits: 64,
            energy_pj_per_bit: 20.0,
        }
    }
}

impl DramModel {
    /// Creates a DRAM model matching an accelerator configuration.
    pub fn from_config(config: &AcceleratorConfig) -> Self {
        DramModel {
            bus_bits: config.dram_bus_bits,
            ..DramModel::default()
        }
    }

    /// Cycles needed to stream `bits` of parameters into the accelerator.
    pub fn transfer_cycles(&self, bits: u64) -> u64 {
        bits.div_ceil(self.bus_bits as u64)
    }

    /// Energy in microjoules for transferring `bits`.
    pub fn transfer_energy_uj(&self, bits: u64) -> f64 {
        bits as f64 * self.energy_pj_per_bit * 1e-6
    }
}

/// Which half of a ping-pong pair is currently being read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PingPongSide {
    /// The "ping" half.
    Ping,
    /// The "pong" half.
    Pong,
}

impl PingPongSide {
    /// The opposite half.
    pub fn other(self) -> Self {
        match self {
            PingPongSide::Ping => PingPongSide::Pong,
            PingPongSide::Pong => PingPongSide::Ping,
        }
    }
}

/// Runtime model of a ping-pong activation buffer pair.
///
/// Each layer reads its input activations from the *read side* and writes
/// its results to the other half; [`PingPongBuffer::write_and_swap`] then makes the
/// freshly written half the read side for the next layer.
#[derive(Debug, Clone, PartialEq)]
pub struct PingPongBuffer {
    read_side: PingPongSide,
    ping: Option<Tensor<i64>>,
    pong: Option<Tensor<i64>>,
    /// Number of completed write→swap handovers (one per executed layer).
    handovers: u64,
}

impl PingPongBuffer {
    /// Creates an empty buffer pair reading from the ping half.
    pub fn new() -> Self {
        PingPongBuffer {
            read_side: PingPongSide::Ping,
            ping: None,
            pong: None,
            handovers: 0,
        }
    }

    /// Which half the next layer reads from.
    pub fn read_side(&self) -> PingPongSide {
        self.read_side
    }

    /// Number of completed layer handovers.
    pub fn handovers(&self) -> u64 {
        self.handovers
    }

    /// Loads the initial activations (the encoded network input) into the
    /// current read half.
    pub fn load_input(&mut self, levels: Tensor<i64>) {
        match self.read_side {
            PingPongSide::Ping => self.ping = Some(levels),
            PingPongSide::Pong => self.pong = Some(levels),
        }
    }

    /// The activations the next layer should read.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] if no activations have been
    /// written yet.
    pub fn current(&self) -> Result<&Tensor<i64>> {
        let side = match self.read_side {
            PingPongSide::Ping => &self.ping,
            PingPongSide::Pong => &self.pong,
        };
        side.as_ref().ok_or_else(|| AccelError::InvalidConfig {
            context: "activation buffer read before any layer wrote it".to_string(),
        })
    }

    /// Writes a layer result into the unused half and swaps, so the next
    /// layer reads what was just written.
    pub fn write_and_swap(&mut self, levels: Tensor<i64>) {
        match self.read_side {
            PingPongSide::Ping => self.pong = Some(levels),
            PingPongSide::Pong => self.ping = Some(levels),
        }
        self.read_side = self.read_side.other();
        self.handovers += 1;
    }
}

impl Default for PingPongBuffer {
    fn default() -> Self {
        PingPongBuffer::new()
    }
}

// ---------------------------------------------------------------------------
// Tiling planner
// ---------------------------------------------------------------------------

/// Bytes a tile of `elements` activation values occupies on chip when every
/// value is stored as its `time_steps`-bit radix code.
pub fn tile_bytes(elements: usize, time_steps: usize) -> u64 {
    ((elements * time_steps) as u64).div_ceil(8)
}

/// One row-band tile of a two-dimensional layer, in whole-layer
/// coordinates: the tile computes output rows `out_lo..out_hi` from the
/// halo-extended input rows `in_lo..in_hi` (all channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowBand {
    /// First output row of the band (inclusive).
    pub out_lo: usize,
    /// Last output row of the band (exclusive).
    pub out_hi: usize,
    /// First input row the band reads (inclusive).
    pub in_lo: usize,
    /// Last input row the band reads (exclusive).
    pub in_hi: usize,
}

impl RowBand {
    /// Number of output rows the band produces.
    pub fn out_rows(&self) -> usize {
        self.out_hi - self.out_lo
    }

    /// Number of input rows the band reads.
    pub fn in_rows(&self) -> usize {
        self.in_hi - self.in_lo
    }

    /// Whether this is the first band of its layer (the pipeline-fill
    /// cycles of the schedule are charged to it).
    pub fn is_first(&self) -> bool {
        self.out_lo == 0
    }
}

/// How one layer's activations are split to fit the configured buffer
/// budget.  A layer that fits untiled has no `LayerTiling` at all.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerTiling {
    /// Convolution/pooling layers: the output feature map is produced in
    /// row bands, each with its halo-extended input band resident.
    RowBands {
        /// The bands, in output-row order, covering every output row
        /// exactly once.
        bands: Vec<RowBand>,
        /// Output rows per full band (the final band may be shorter).
        rows_per_tile: usize,
    },
    /// Fully-connected layers: the whole input vector stays resident and
    /// the output neurons are produced in lane-aligned chunks.
    OutputChunks {
        /// Output neurons per chunk — always a multiple of the linear
        /// unit's lane count so per-chunk cycle counts sum exactly to the
        /// untiled schedule (the final chunk may be shorter).
        chunk: usize,
    },
}

impl LayerTiling {
    /// Number of tiles the layer is split into.
    pub fn tile_count(&self, output_extent: usize) -> usize {
        match self {
            LayerTiling::RowBands { bands, .. } => bands.len(),
            LayerTiling::OutputChunks { chunk } => output_extent.div_ceil((*chunk).max(1)),
        }
    }
}

/// Activation tiling of a whole network under one buffer budget.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilePlan {
    /// Per-layer tiling, `None` where the layer fits untiled.
    pub layers: Vec<Option<LayerTiling>>,
    /// The byte budget the plan was computed for.
    pub budget_bytes: u64,
    /// Spike-train length the byte accounting used.
    pub time_steps: usize,
}

impl TilePlan {
    /// Whether any layer needed tiling.
    pub fn is_tiled(&self) -> bool {
        self.layers.iter().any(Option::is_some)
    }

    /// Number of layers that execute tiled.
    pub fn tiled_layers(&self) -> usize {
        self.layers.iter().filter(|t| t.is_some()).count()
    }
}

/// Working-set bytes of layer `index` executed *untiled*: the full input
/// plus the full output activation map at `time_steps`-bit radix codes.
pub fn layer_footprint_bytes(net: &NetworkSpec, index: usize, time_steps: usize) -> u64 {
    let input: usize = net.layer_input_shape(index).iter().product();
    let output: usize = net.layer_output_shape(index).iter().product();
    tile_bytes(input, time_steps) + tile_bytes(output, time_steps)
}

/// The largest untiled per-layer working set of the network — the budget an
/// untiled execution would need.  Tiling is interesting exactly when the
/// configured budget is (much) smaller than this.
pub fn largest_layer_footprint_bytes(net: &NetworkSpec, time_steps: usize) -> u64 {
    (0..net.layers().len())
        .map(|i| layer_footprint_bytes(net, i, time_steps))
        .max()
        .unwrap_or(0)
}

/// Input rows a band of `out_rows` convolution output rows needs in the
/// worst case (interior band, halo on both sides), clamped to the layer's
/// input height.
fn conv_band_input_rows(out_rows: usize, kernel: usize, stride: usize, input_h: usize) -> usize {
    ((out_rows - 1) * stride + kernel).min(input_h)
}

/// The halo-extended input row range of a convolution output band.
fn conv_band(
    out_lo: usize,
    out_hi: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    input_h: usize,
) -> RowBand {
    let in_lo = (out_lo * stride).saturating_sub(padding);
    let in_hi = ((out_hi - 1) * stride + kernel)
        .saturating_sub(padding)
        .min(input_h);
    RowBand {
        out_lo,
        out_hi,
        in_lo,
        in_hi,
    }
}

/// Plans row-band tiling for every layer of `net` so that each layer's
/// working set — the halo-extended input tile plus the output tile, both at
/// `time_steps`-bit radix codes — fits in `budget_bytes`.
///
/// Layers whose full input + output already fit get `None` (untiled).
/// Convolution bands are rounded down to a multiple of a directly
/// following pooling layer's window when possible, so the fused
/// conv → pool execution path can stream the bands.  Flatten is a pure
/// element-wise buffer transfer and never needs tiling.  Fully-connected
/// layers keep the whole input vector resident and chunk their outputs in
/// multiples of `linear_lanes`.
///
/// # Errors
///
/// Returns [`AccelError::BufferBudget`] when even the smallest possible
/// tile of some layer (one output row, or one lane group of output
/// neurons) exceeds the budget.
pub fn plan_network_tiles(
    net: &NetworkSpec,
    time_steps: usize,
    budget_bytes: u64,
    linear_lanes: usize,
) -> Result<TilePlan> {
    let lanes = linear_lanes.max(1);
    let mut layers = Vec::with_capacity(net.layers().len());
    for (i, layer) in net.layers().iter().enumerate() {
        let in_shape = net.layer_input_shape(i);
        let out_shape = net.layer_output_shape(i);
        if layer_footprint_bytes(net, i, time_steps) <= budget_bytes {
            layers.push(None);
            continue;
        }
        let tiling = match *layer {
            LayerSpec::Conv2d {
                kernel,
                stride,
                padding,
                ..
            } => {
                let (c_in, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
                let (c_out, h_out, w_out) = (out_shape[0], out_shape[1], out_shape[2]);
                let band_bytes = |rows: usize| {
                    tile_bytes(
                        c_in * conv_band_input_rows(rows, kernel, stride, h) * w,
                        time_steps,
                    ) + tile_bytes(c_out * rows * w_out, time_steps)
                };
                let mut rows = (1..=h_out)
                    .take_while(|&r| band_bytes(r) <= budget_bytes)
                    .last()
                    .ok_or(AccelError::BufferBudget {
                        layer: i,
                        required_bytes: band_bytes(1),
                        budget_bytes,
                    })?;
                // Align to a directly following pooling window so the
                // fused pair can pool each band independently.
                if let Some(LayerSpec::Pool { window, .. }) = net.layers().get(i + 1) {
                    if rows >= *window {
                        rows -= rows % *window;
                    }
                }
                let bands = (0..h_out)
                    .step_by(rows)
                    .map(|lo| conv_band(lo, (lo + rows).min(h_out), kernel, stride, padding, h))
                    .collect();
                LayerTiling::RowBands {
                    bands,
                    rows_per_tile: rows,
                }
            }
            LayerSpec::Pool { window, .. } => {
                let (c, h) = (in_shape[0], in_shape[1]);
                let (w, h_out, w_out) = (in_shape[2], out_shape[1], out_shape[2]);
                // The final band also carries the `h % window` trailing
                // input rows a non-divisible height leaves below the last
                // window (so streamed spike counts partition exactly), so
                // size every band for that worst case.
                let trailing = h - h_out * window;
                let band_bytes = |rows: usize| {
                    tile_bytes(c * (rows * window + trailing) * w, time_steps)
                        + tile_bytes(c * rows * w_out, time_steps)
                };
                let rows = (1..=h_out)
                    .take_while(|&r| band_bytes(r) <= budget_bytes)
                    .last()
                    .ok_or(AccelError::BufferBudget {
                        layer: i,
                        required_bytes: band_bytes(1),
                        budget_bytes,
                    })?;
                let bands = (0..h_out)
                    .step_by(rows)
                    .map(|lo| {
                        let hi = (lo + rows).min(h_out);
                        RowBand {
                            out_lo: lo,
                            out_hi: hi,
                            // The final band also carries any input rows a
                            // non-divisible height leaves below the last
                            // window, so streamed spike counts match the
                            // untiled unit exactly.
                            in_lo: lo * window,
                            in_hi: if hi == h_out { h } else { hi * window },
                        }
                    })
                    .collect();
                LayerTiling::RowBands {
                    bands,
                    rows_per_tile: rows,
                }
            }
            // A flatten step moves one element per cycle between the 2-D
            // and 1-D buffers; it has no working set beyond the maps the
            // adjacent layers already account for.
            LayerSpec::Flatten => {
                layers.push(None);
                continue;
            }
            LayerSpec::Linear { in_features, .. } => {
                let out_features = out_shape[0];
                let input_bytes = tile_bytes(in_features, time_steps);
                let lane_chunk_bytes = input_bytes + tile_bytes(lanes, time_steps);
                if lane_chunk_bytes > budget_bytes {
                    return Err(AccelError::BufferBudget {
                        layer: i,
                        required_bytes: lane_chunk_bytes,
                        budget_bytes,
                    });
                }
                let spare_bits = (budget_bytes - input_bytes) * 8;
                let max_outputs = ((spare_bits / time_steps.max(1) as u64) as usize)
                    .min(out_features)
                    .max(lanes);
                LayerTiling::OutputChunks {
                    chunk: (max_outputs - max_outputs % lanes).max(lanes),
                }
            }
        };
        layers.push(Some(tiling));
    }
    Ok(TilePlan {
        layers,
        budget_bytes,
        time_steps,
    })
}

/// Aggregate memory-traffic statistics of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryTraffic {
    /// Bits streamed from external DRAM (zero for on-chip weight storage).
    pub dram_bits: u64,
    /// On-chip activation-buffer reads (rows).
    pub activation_reads: u64,
    /// On-chip weight-memory reads (words).
    pub weight_reads: u64,
    /// On-chip activation-buffer writes (values).
    pub activation_writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::zoo;

    #[test]
    fn bram_conversion_rounds_up() {
        assert_eq!(bits_to_bram36(1), 1);
        assert_eq!(bits_to_bram36(BRAM36_BITS), 1);
        assert_eq!(bits_to_bram36(BRAM36_BITS + 1), 2);
    }

    #[test]
    fn lenet_activation_plan_is_dominated_by_first_conv_output() {
        let net = zoo::lenet5();
        let plan = ActivationBufferPlan::for_network(&net, 4);
        // Largest 2-D activation of LeNet-5 is 6x28x28 = 4704 values.
        assert_eq!(plan.buffer_2d_bits, 4704 * 4);
        // Largest 1-D activation is the flattened 120 / fc 120 = 120 values.
        assert_eq!(plan.buffer_1d_bits, 120 * 4);
        assert!(plan.total_bits() > 0);
        assert!(plan.bram36() >= 1);
    }

    #[test]
    fn buffer_grows_with_time_steps() {
        let net = zoo::lenet5();
        let p3 = ActivationBufferPlan::for_network(&net, 3);
        let p6 = ActivationBufferPlan::for_network(&net, 6);
        assert_eq!(p6.buffer_2d_bits, 2 * p3.buffer_2d_bits);
    }

    #[test]
    fn weight_plan_counts_all_parameters() {
        let net = zoo::lenet5();
        let plan = WeightMemoryPlan::for_network(&net, 3, MemoryOption::OnChip);
        assert_eq!(plan.total_weight_bits, net.parameter_count() as u64 * 3);
        assert!(plan.max_layer_weight_bits < plan.total_weight_bits);
        // On-chip option stores everything, DRAM option only one layer.
        let dram_plan = WeightMemoryPlan::for_network(&net, 3, MemoryOption::Dram);
        assert!(dram_plan.bram36() <= plan.bram36());
    }

    #[test]
    fn vgg_weights_do_not_fit_realistically_on_chip() {
        let net = zoo::vgg11(100);
        let plan = WeightMemoryPlan::for_network(&net, 3, MemoryOption::OnChip);
        // 28.5M parameters at 3 bits ≈ 85.6 Mbit — far more than the
        // ~94 Mbit total BRAM of even the largest UltraScale+ parts once
        // activations are accounted for, which is why the paper streams
        // VGG weights from DRAM.
        assert!(plan.total_weight_bits > 80_000_000);
    }

    #[test]
    fn dram_transfer_cycles_round_up() {
        let dram = DramModel {
            bus_bits: 64,
            energy_pj_per_bit: 20.0,
        };
        assert_eq!(dram.transfer_cycles(64), 1);
        assert_eq!(dram.transfer_cycles(65), 2);
        assert!(dram.transfer_energy_uj(1_000_000) > 0.0);
    }

    #[test]
    fn ping_pong_alternates_sides() {
        let mut buffer = PingPongBuffer::new();
        buffer.load_input(Tensor::filled(vec![4], 1i64));
        assert_eq!(buffer.read_side(), PingPongSide::Ping);
        assert_eq!(buffer.current().unwrap().as_slice(), &[1, 1, 1, 1]);

        buffer.write_and_swap(Tensor::filled(vec![2], 2i64));
        assert_eq!(buffer.read_side(), PingPongSide::Pong);
        assert_eq!(buffer.current().unwrap().as_slice(), &[2, 2]);

        buffer.write_and_swap(Tensor::filled(vec![1], 3i64));
        assert_eq!(buffer.read_side(), PingPongSide::Ping);
        assert_eq!(buffer.current().unwrap().as_slice(), &[3]);
        assert_eq!(buffer.handovers(), 2);
    }

    #[test]
    fn reading_an_empty_buffer_is_an_error() {
        let buffer = PingPongBuffer::new();
        assert!(buffer.current().is_err());
    }

    #[test]
    fn tile_bytes_rounds_radix_bits_up() {
        assert_eq!(tile_bytes(0, 4), 0);
        assert_eq!(tile_bytes(1, 4), 1); // 4 bits -> 1 byte
        assert_eq!(tile_bytes(2, 4), 1); // 8 bits -> 1 byte
        assert_eq!(tile_bytes(3, 4), 2); // 12 bits -> 2 bytes
        assert_eq!(tile_bytes(10, 3), 4); // 30 bits -> 4 bytes
    }

    #[test]
    fn generous_budget_plans_no_tiling() {
        let net = zoo::tiny_cnn();
        let plan = plan_network_tiles(&net, 4, 1 << 20, 32).unwrap();
        assert!(!plan.is_tiled());
        assert_eq!(plan.layers.len(), net.layers().len());
    }

    #[test]
    fn conv_bands_partition_output_rows_with_halo_extended_inputs() {
        // LeNet conv1: 1x32x32 -> 6x28x28, 5x5 kernel, stride 1, no pad.
        let net = zoo::lenet5();
        let budget = 2048u64; // far below conv1's ~21 KiB footprint at T=4
        let plan = plan_network_tiles(&net, 4, budget, 32).unwrap();
        let Some(LayerTiling::RowBands { bands, .. }) = &plan.layers[0] else {
            panic!("conv1 should be tiled");
        };
        assert!(bands.len() > 1);
        // Bands cover 0..28 exactly once, in order.
        let mut next = 0;
        for band in bands {
            assert_eq!(band.out_lo, next);
            next = band.out_hi;
            // Halo: a band of R output rows reads R + kernel - stride
            // extra rows (clamped at the borders).
            assert_eq!(band.in_lo, band.out_lo); // stride 1, no padding
            assert_eq!(band.in_hi, (band.out_hi - 1 + 5).min(32));
            // And its working set respects the budget.
            let in_bytes = tile_bytes(band.in_rows() * 32, 4);
            let out_bytes = tile_bytes(6 * band.out_rows() * 28, 4);
            assert!(in_bytes + out_bytes <= budget);
        }
        assert_eq!(next, 28);
        assert!(bands[0].is_first());
        assert!(!bands[1].is_first());
    }

    #[test]
    fn conv_bands_align_to_a_following_pool_window() {
        // VGG-11 conv1 feeds 2x2 max pooling: tile heights must be even
        // so the fused pair can stream the bands.
        let net = zoo::vgg11(10);
        let plan = plan_network_tiles(&net, 4, 8 * 1024, 32).unwrap();
        assert!(plan.is_tiled());
        for (i, layer) in net.layers().iter().enumerate() {
            let feeds_pool = matches!(net.layers().get(i + 1), Some(LayerSpec::Pool { .. }));
            if let (true, Some(LayerTiling::RowBands { bands, .. })) = (feeds_pool, &plan.layers[i])
            {
                assert!(matches!(layer, LayerSpec::Conv2d { .. }));
                for band in bands {
                    assert_eq!(band.out_rows() % 2, 0, "layer {i} band {band:?}");
                }
            }
        }
    }

    #[test]
    fn pool_bands_stay_within_budget_including_trailing_rows() {
        use snn_model::{LayerSpec, NetworkSpec};
        // 9 input rows, 2x2 window: the final band carries the trailing
        // ninth row, and the planner must budget for it.
        let net =
            NetworkSpec::new("odd-pool", vec![3, 9, 8], vec![LayerSpec::avg_pool2()]).unwrap();
        let budget = 66u64;
        let plan = plan_network_tiles(&net, 4, budget, 32).unwrap();
        let Some(LayerTiling::RowBands { bands, .. }) = &plan.layers[0] else {
            panic!("pool should be tiled");
        };
        let mut covered_in = 0;
        for band in bands {
            let bytes =
                tile_bytes(3 * band.in_rows() * 8, 4) + tile_bytes(3 * band.out_rows() * 4, 4);
            assert!(bytes <= budget, "band {band:?} uses {bytes} B");
            covered_in = band.in_hi;
        }
        // Every input row — including the unread trailing one — belongs
        // to exactly one band, so streamed spike counts partition.
        assert_eq!(covered_in, 9);
        assert_eq!(bands.last().unwrap().in_rows(), 3);
    }

    #[test]
    fn impossible_budget_is_a_typed_error_naming_the_layer() {
        let net = zoo::lenet5();
        // 8 bytes cannot hold even one output row of conv1.
        match plan_network_tiles(&net, 4, 8, 32) {
            Err(AccelError::BufferBudget {
                layer,
                required_bytes,
                budget_bytes,
            }) => {
                assert_eq!(layer, 0);
                assert!(required_bytes > budget_bytes);
                assert_eq!(budget_bytes, 8);
            }
            other => panic!("expected BufferBudget, got {other:?}"),
        }
    }

    #[test]
    fn linear_chunks_are_lane_aligned() {
        use snn_model::{LayerSpec, NetworkSpec};
        let net =
            NetworkSpec::new("big-fc", vec![4096], vec![LayerSpec::linear(4096, 4096)]).unwrap();
        // T = 4: the input vector costs 2 KiB; a 3 KiB budget leaves 1 KiB
        // of spare for 2048 output codes — far below the 4096 outputs.
        let plan = plan_network_tiles(&net, 4, 3 * 1024, 32).unwrap();
        match &plan.layers[0] {
            Some(LayerTiling::OutputChunks { chunk }) => {
                assert_eq!(*chunk, 2048);
                assert_eq!(chunk % 32, 0);
            }
            other => panic!("expected output chunks, got {other:?}"),
        }
        // A budget that cannot even hold one lane group is a typed error.
        match plan_network_tiles(&net, 4, 2049, 32) {
            Err(AccelError::BufferBudget { layer, .. }) => assert_eq!(layer, 0),
            other => panic!("expected BufferBudget, got {other:?}"),
        }
    }

    #[test]
    fn vgg11_fits_a_budget_four_times_below_its_largest_layer() {
        let net = zoo::vgg11(10);
        let largest = largest_layer_footprint_bytes(&net, 4);
        let budget = 8 * 1024u64;
        assert!(
            largest >= 4 * budget,
            "largest layer {largest} B is not 4x the {budget} B budget"
        );
        let plan = plan_network_tiles(&net, 4, budget, 32).unwrap();
        // The seven early layers (conv1..conv4 and the first three pools)
        // all exceed 8 KiB untiled; the narrow late layers fit.
        assert_eq!(plan.tiled_layers(), 7);
    }
}
