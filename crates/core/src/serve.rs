//! Streaming batch server: a submission queue with micro-batching on top
//! of the pipelined execution engine.
//!
//! [`StreamServer`] owns one accelerator and one compiled model.  Clients
//! [`StreamServer::submit`] inputs at any rate; a dispatcher thread drains
//! the submission queue into micro-batches of up to
//! [`ServerOptions::max_batch`] inputs and executes each batch over the
//! shared worker pool — compiling once at start-up instead of per call,
//! and (by default) serving on the **bit-plane sparse engine**, which is
//! both unit-exact and measurably faster than the functional
//! transaction-level path on radix workloads.  Every report a client
//! receives is bit-identical to the matching solo
//! [`crate::sim::Accelerator`] call (pinned by property tests).
//!
//! All parallelism — batch workers, per-layer channel fan-out and pipeline
//! stage threads — draws from the single global
//! [`snn_parallel::ThreadBudget`], so a server under heavy traffic cannot
//! oversubscribe the host.  [`StreamServer::stats`] reports completed
//! inferences, micro-batch sizes, wall-clock throughput and the modelled
//! per-unit utilisation; the end-to-end benchmark records these in
//! `BENCH_serve.json`.
//!
//! # Admission policy
//!
//! The submission queue is **bounded** by
//! [`ServerOptions::queue_capacity`] with a *reject-when-full* policy:
//! [`StreamServer::submit`] never blocks the caller — when the queue
//! already holds `queue_capacity` undispatched inputs the submission is
//! rejected immediately with the typed [`AccelError::QueueFull`] (carrying
//! the observed depth and the capacity) and counted in
//! [`ServerStats::rejected`].  Rejection is load shedding, not failure:
//! the client sees exactly which limit it hit and can retry, back off or
//! route elsewhere, while the server's memory stays bounded no matter how
//! fast clients submit — the property a network front-end needs.

use crate::compiler::Program;
use crate::config::AcceleratorConfig;
use crate::exec::{utilisation_from_program, ExecOptions, ExecutionMode};
use crate::report::{RunReport, UnitUtilisation};
use crate::sim::Accelerator;
use crate::{AccelError, Result};
use snn_model::snn::SnnModel;
use snn_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Options of a [`StreamServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Maximum number of queued inputs drained into one micro-batch.
    pub max_batch: usize,
    /// At which level of detail inferences execute.  The default is
    /// [`ExecutionMode::CycleAccurate`]: the sparse engine is the faster
    /// serving path *and* reports exact unit work; pick
    /// [`ExecutionMode::Transaction`] to serve the functional model with
    /// analytical timing only.
    pub mode: ExecutionMode,
    /// Execution-engine options applied to every inference.
    pub exec: ExecOptions,
    /// Maximum undispatched submissions the queue holds before
    /// [`StreamServer::submit`] starts rejecting with
    /// [`AccelError::QueueFull`] (see the module docs on the admission
    /// policy).  A capacity of `0` rejects every submission — useful to
    /// drain a server without accepting new work.
    pub queue_capacity: usize,
}

/// Default [`ServerOptions::queue_capacity`]: deep enough that a paced
/// client never notices, small enough to bound memory under abuse.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_batch: 8,
            mode: ExecutionMode::CycleAccurate,
            exec: ExecOptions::default(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }
}

/// A pending inference: resolved by [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    receiver: mpsc::Receiver<Result<RunReport>>,
}

impl Ticket {
    /// Blocks until the inference completes and returns its report.
    ///
    /// # Errors
    ///
    /// Propagates execution errors, or [`AccelError::Serving`] when the
    /// server shut down before this inference was dispatched.
    pub fn wait(self) -> Result<RunReport> {
        self.receiver.recv().map_err(|_| AccelError::Serving {
            context: "server shut down before the inference completed".to_string(),
        })?
    }
}

struct Submission {
    input: Tensor<f32>,
    reply: mpsc::Sender<Result<RunReport>>,
}

#[derive(Default)]
struct SubmissionQueue {
    jobs: VecDeque<Submission>,
    shutdown: bool,
}

struct StatsAccum {
    completed: u64,
    errors: u64,
    batches: u64,
    largest_batch: usize,
    rejected: u64,
}

struct ServerShared {
    accel: Accelerator,
    model: SnnModel,
    program: Program,
    options: ServerOptions,
    queue: Mutex<SubmissionQueue>,
    ready: Condvar,
    stats: Mutex<StatsAccum>,
    started: Instant,
}

/// Snapshot of a server's serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Inferences completed successfully.
    pub completed: u64,
    /// Inferences that returned an error.
    pub errors: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Largest micro-batch dispatched so far.
    pub largest_batch: usize,
    /// Submissions rejected by the bounded-queue admission policy.
    pub rejected: u64,
    /// Configured micro-batch cap.
    pub max_batch: usize,
    /// Configured submission-queue capacity.
    pub queue_capacity: usize,
    /// Effective global thread budget the server draws from.
    pub thread_budget: usize,
    /// Wall-clock seconds since the server started.
    pub elapsed_s: f64,
    /// Modelled per-unit busy/idle occupancy of one inference (identical
    /// for every inference of the compiled model).
    pub utilisation: Vec<UnitUtilisation>,
}

impl ServerStats {
    /// Completed inferences per wall-clock second since start-up.
    pub fn throughput_ips(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.elapsed_s
    }

    /// Mean micro-batch size (`0.0` before the first batch).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        (self.completed + self.errors) as f64 / self.batches as f64
    }
}

/// Streaming micro-batching inference server.  See the module docs.
#[derive(Debug)]
pub struct StreamServer {
    shared: Arc<ServerShared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerShared")
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl StreamServer {
    /// Starts a server for `model` on an accelerator with `config` and
    /// default [`ServerOptions`].  The model is compiled once, up front.
    ///
    /// # Errors
    ///
    /// Returns an error when the model cannot be mapped onto the
    /// configuration.
    pub fn start(config: AcceleratorConfig, model: SnnModel) -> Result<Self> {
        Self::start_with(config, model, ServerOptions::default())
    }

    /// Starts a server with explicit options.
    ///
    /// # Errors
    ///
    /// See [`StreamServer::start`].
    pub fn start_with(
        config: AcceleratorConfig,
        model: SnnModel,
        options: ServerOptions,
    ) -> Result<Self> {
        let accel = Accelerator::with_options(config, options.exec);
        let program = accel.compile(&model)?;
        let shared = Arc::new(ServerShared {
            accel,
            model,
            program,
            options,
            queue: Mutex::new(SubmissionQueue::default()),
            ready: Condvar::new(),
            stats: Mutex::new(StatsAccum {
                completed: 0,
                errors: 0,
                batches: 0,
                largest_batch: 0,
                rejected: 0,
            }),
            started: Instant::now(),
        });
        let dispatcher_shared = Arc::clone(&shared);
        let dispatcher = thread::Builder::new()
            .name("snn-serve-dispatch".to_string())
            .spawn(move || dispatch_loop(&dispatcher_shared))
            .expect("spawn dispatcher thread");
        Ok(StreamServer {
            shared,
            dispatcher: Some(dispatcher),
        })
    }

    /// Enqueues one input for inference and returns its [`Ticket`].
    ///
    /// Never blocks: admission is governed by the bounded-queue policy in
    /// the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::QueueFull`] when the submission queue already
    /// holds [`ServerOptions::queue_capacity`] undispatched inputs (the
    /// rejection is also counted in [`ServerStats::rejected`]), and
    /// [`AccelError::Serving`] when the server has begun shutting down.
    pub fn submit(&self, input: Tensor<f32>) -> Result<Ticket> {
        let (reply, receiver) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("submission queue lock");
            if queue.shutdown {
                return Err(AccelError::Serving {
                    context: "server is shutting down and no longer accepts submissions"
                        .to_string(),
                });
            }
            if queue.jobs.len() >= self.shared.options.queue_capacity {
                let queued = queue.jobs.len();
                drop(queue);
                let mut accum = self.shared.stats.lock().expect("server stats lock");
                accum.rejected += 1;
                return Err(AccelError::QueueFull {
                    queued,
                    capacity: self.shared.options.queue_capacity,
                });
            }
            queue.jobs.push_back(Submission { input, reply });
        }
        self.shared.ready.notify_one();
        Ok(Ticket { receiver })
    }

    /// Submits all `inputs` and waits for all results, in order.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered — including an admission
    /// rejection, which cancels the not-yet-submitted remainder; already
    /// accepted inferences still complete server-side.
    pub fn run_all(&self, inputs: &[Tensor<f32>]) -> Result<Vec<RunReport>> {
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|i| self.submit(i.clone()))
            .collect::<Result<_>>()?;
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Snapshot of the serving statistics.
    pub fn stats(&self) -> ServerStats {
        let accum = self.shared.stats.lock().expect("server stats lock");
        ServerStats {
            completed: accum.completed,
            errors: accum.errors,
            batches: accum.batches,
            largest_batch: accum.largest_batch,
            rejected: accum.rejected,
            max_batch: self.shared.options.max_batch,
            queue_capacity: self.shared.options.queue_capacity,
            thread_budget: snn_parallel::budget().total(),
            elapsed_s: self.shared.started.elapsed().as_secs_f64(),
            utilisation: utilisation_from_program(self.shared.accel.config(), &self.shared.program),
        }
    }

    /// Drains the queue, stops the dispatcher and returns the final
    /// statistics.  Queued-but-undispatched submissions are still served;
    /// submissions after shutdown starts are not.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("submission queue lock");
            queue.shutdown = true;
        }
        self.shared.ready.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            handle.join().expect("dispatcher thread");
        }
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn dispatch_loop(shared: &ServerShared) {
    let max_batch = shared.options.max_batch.max(1);
    loop {
        // Collect the next micro-batch: everything queued, capped.
        let batch: Vec<Submission> = {
            let mut queue = shared.queue.lock().expect("submission queue lock");
            loop {
                if !queue.jobs.is_empty() {
                    let take = queue.jobs.len().min(max_batch);
                    break queue.jobs.drain(..take).collect();
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.ready.wait(queue).expect("submission queue wait");
            }
        };

        // Execute the micro-batch over the shared worker pool.
        let threads = snn_parallel::budget().total().min(batch.len());
        let reports = snn_parallel::par_map(&batch, threads, |_, submission| {
            shared.accel.execute_compiled(
                &shared.model,
                &shared.program,
                &submission.input,
                shared.options.mode,
                shared.options.exec,
            )
        });

        let mut completed = 0u64;
        let mut errors = 0u64;
        for (submission, report) in batch.into_iter().zip(reports) {
            if report.is_ok() {
                completed += 1;
            } else {
                errors += 1;
            }
            // A dropped ticket just means the client stopped listening.
            let _ = submission.reply.send(report);
        }
        let mut accum = shared.stats.lock().expect("server stats lock");
        accum.completed += completed;
        accum.errors += errors;
        accum.batches += 1;
        accum.largest_batch = accum.largest_batch.max((completed + errors) as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
    use snn_model::params::Parameters;
    use snn_model::zoo;

    fn tiny_setup(time_steps: usize) -> (SnnModel, Vec<Tensor<f32>>) {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 11).unwrap();
        let inputs: Vec<Tensor<f32>> = (0..6)
            .map(|i| {
                let values: Vec<f32> = (0..144)
                    .map(|j| ((i * 17 + j * 5) % 100) as f32 / 100.0)
                    .collect();
                Tensor::from_vec(vec![1, 12, 12], values).unwrap()
            })
            .collect();
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let model = convert(
            &net,
            &params,
            &stats,
            ConversionConfig {
                weight_bits: 3,
                time_steps,
            },
        )
        .unwrap();
        (model, inputs)
    }

    #[test]
    fn served_reports_match_solo_runs_bit_exactly() {
        let (model, inputs) = tiny_setup(4);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start(config, model.clone()).unwrap();
        let served = server.run_all(&inputs).unwrap();
        let accel = Accelerator::new(config);
        for (report, input) in served.iter().zip(&inputs) {
            let solo = accel.run(&model, input).unwrap();
            assert_eq!(report, &solo);
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, inputs.len() as u64);
        assert_eq!(stats.errors, 0);
        assert!(stats.batches >= 1);
        assert!(stats.largest_batch <= stats.max_batch);
        assert!(!stats.utilisation.is_empty());
    }

    #[test]
    fn transaction_mode_matches_run_fast() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start_with(
            config,
            model.clone(),
            ServerOptions {
                mode: ExecutionMode::Transaction,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let served = server.run_all(&inputs).unwrap();
        let accel = Accelerator::new(config);
        for (report, input) in served.iter().zip(&inputs) {
            let solo = accel.run_fast(&model, input).unwrap();
            assert_eq!(report, &solo);
        }
    }

    #[test]
    fn micro_batch_of_one_works() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_batch: 1,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let served = server.run_all(&inputs[..2]).unwrap();
        assert_eq!(served.len(), 2);
        let stats = server.shutdown();
        assert_eq!(stats.batches, 2);
        assert!((stats.mean_batch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_inputs_error_without_stalling_the_server() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let bad = server
            .submit(Tensor::filled(vec![1, 8, 8], 0.5f32))
            .unwrap();
        let good = server.submit(inputs[0].clone()).unwrap();
        assert!(bad.wait().is_err());
        assert!(good.wait().is_ok());
        let stats = server.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn unmappable_model_is_rejected_at_startup() {
        let (model, _) = tiny_setup(3);
        let config = AcceleratorConfig {
            conv_units: 0,
            ..AcceleratorConfig::default()
        };
        assert!(StreamServer::start(config, model).is_err());
    }

    #[test]
    fn shutdown_before_dispatch_resolves_tickets_with_an_error_or_result() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let ticket = server.submit(inputs[0].clone()).unwrap();
        // Shutdown drains the queue first, so this ticket resolves with a
        // report rather than hanging.
        let stats = server.shutdown();
        assert!(ticket.wait().is_ok());
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn zero_capacity_rejects_every_submission_with_a_typed_error() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                queue_capacity: 0,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        for _ in 0..3 {
            match server.submit(inputs[0].clone()) {
                Err(AccelError::QueueFull { queued, capacity }) => {
                    assert_eq!(queued, 0);
                    assert_eq!(capacity, 0);
                }
                other => panic!("expected QueueFull, got {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.queue_capacity, 0);
    }

    #[test]
    fn default_capacity_admits_normal_traffic_without_rejections() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let served = server.run_all(&inputs).unwrap();
        assert_eq!(served.len(), inputs.len());
        let stats = server.shutdown();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.queue_capacity, DEFAULT_QUEUE_CAPACITY);
    }
}
