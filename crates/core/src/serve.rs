//! Streaming batch server: a submission queue with micro-batching on top
//! of the pipelined execution engine.
//!
//! [`StreamServer`] owns one accelerator and one compiled model.  Clients
//! [`StreamServer::submit`] inputs at any rate; a dispatcher thread drains
//! the submission queue into micro-batches of up to
//! [`ServerOptions::max_batch`] inputs and executes each batch over the
//! shared worker pool — compiling once at start-up instead of per call,
//! and (by default) serving on the **bit-plane sparse engine**, which is
//! both unit-exact and measurably faster than the functional
//! transaction-level path on radix workloads.  Every report a client
//! receives is bit-identical to the matching solo
//! [`crate::sim::Accelerator`] call (pinned by property tests).
//!
//! All parallelism — batch workers, per-layer channel fan-out and pipeline
//! stage threads — draws from the single global
//! [`snn_parallel::ThreadBudget`], so a server under heavy traffic cannot
//! oversubscribe the host.  [`StreamServer::stats`] reports completed
//! inferences, micro-batch sizes, wall-clock throughput and the modelled
//! per-unit utilisation; the end-to-end benchmark records these in
//! `BENCH_serve.json`.
//!
//! # Admission policy
//!
//! The submission queue is **bounded** by
//! [`ServerOptions::queue_capacity`] with a *reject-when-full* policy:
//! [`StreamServer::submit`] never blocks the caller — when the queue
//! already holds `queue_capacity` undispatched inputs the submission is
//! rejected immediately with the typed [`AccelError::QueueFull`] (carrying
//! the observed depth and the capacity) and counted in
//! [`ServerStats::rejected`].  Rejection is load shedding, not failure:
//! the client sees exactly which limit it hit and can retry, back off or
//! route elsewhere, while the server's memory stays bounded no matter how
//! fast clients submit — the property a network front-end needs.
//! [`StreamServer::queue_snapshot`] exposes the live queue depth and the
//! recent drain rate (windowed over the last [`DRAIN_WINDOW_BATCHES`]
//! micro-batches) so that front-end (`snn-net`) can attach a concrete
//! *retry-after* hint to every rejection.
//!
//! # Completion paths
//!
//! Results come back one of two ways:
//!
//! * **Tickets** — [`StreamServer::submit`] returns a [`Ticket`] whose
//!   [`Ticket::wait`] blocks a thread (or [`Ticket::try_wait`] polls).
//! * **Completion queue** — [`StreamServer::submit_tagged`] delivers a
//!   tagged [`Completion`] through a shared [`CompletionSink`] and then
//!   invokes the sink's waker callback.  This is the path an event-driven
//!   front-end uses: the `snn-net` reactor hands the dispatcher a waker
//!   that writes one byte into its wake pipe, keeps hundreds of inferences
//!   in flight across its connections, and never parks a thread per
//!   request.  Both paths are bit-identical.

use crate::compiler::Program;
use crate::config::AcceleratorConfig;
use crate::exec::{utilisation_from_program, ExecOptions, ExecutionMode};
use crate::report::{RunReport, UnitUtilisation};
use crate::sim::Accelerator;
use crate::{AccelError, Result};
use snn_model::snn::SnnModel;
use snn_tensor::Tensor;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Options of a [`StreamServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Maximum number of queued inputs drained into one micro-batch.
    pub max_batch: usize,
    /// At which level of detail inferences execute.  The default is
    /// [`ExecutionMode::CycleAccurate`]: the sparse engine is the faster
    /// serving path *and* reports exact unit work; pick
    /// [`ExecutionMode::Transaction`] to serve the functional model with
    /// analytical timing only.
    pub mode: ExecutionMode,
    /// Execution-engine options applied to every inference.
    pub exec: ExecOptions,
    /// Maximum undispatched submissions the queue holds before
    /// [`StreamServer::submit`] starts rejecting with
    /// [`AccelError::QueueFull`] (see the module docs on the admission
    /// policy).  Must be at least `1`: a zero capacity would reject every
    /// submission, so [`StreamServer::start_with`] refuses it with the
    /// typed [`AccelError::InvalidConfig`] instead of starting a server
    /// that can never serve (use [`StreamServer::shutdown`] to drain).
    pub queue_capacity: usize,
    /// Server-wide deadline on **queue wait**: a submission that has sat
    /// undispatched for this long is shed *before* compute with the typed
    /// [`AccelError::DeadlineExceeded`] (counted in
    /// [`ServerStats::deadline_sheds`]) instead of being computed late for
    /// a client that has given up.  `None` (the default) never sheds;
    /// per-request deadlines passed to [`StreamServer::submit_within`]
    /// tighten this bound but never loosen it.  A zero duration sheds
    /// every queued submission — useful in tests, degenerate in
    /// production.
    pub max_queue_wait: Option<Duration>,
}

/// Default [`ServerOptions::queue_capacity`]: deep enough that a paced
/// client never notices, small enough to bound memory under abuse.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_batch: 8,
            mode: ExecutionMode::CycleAccurate,
            exec: ExecOptions::default(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            max_queue_wait: None,
        }
    }
}

/// A pending inference: resolved by [`Ticket::wait`] (blocking) or polled
/// with [`Ticket::try_wait`] (non-blocking).
#[derive(Debug)]
pub struct Ticket {
    receiver: mpsc::Receiver<Result<RunReport>>,
}

impl Ticket {
    /// Blocks until the inference completes and returns its report.
    ///
    /// # Errors
    ///
    /// Propagates execution errors, or [`AccelError::Serving`] when the
    /// server shut down before this inference was dispatched.
    pub fn wait(self) -> Result<RunReport> {
        self.receiver.recv().map_err(|_| AccelError::Serving {
            context: "server shut down before the inference completed".to_string(),
        })?
    }

    /// Non-blocking poll: returns the report if the inference has settled,
    /// `None` while it is still queued or executing.
    ///
    /// The result is delivered **once**: after `try_wait` returns `Some`,
    /// later calls (and [`Ticket::wait`]) see the ticket as dead and report
    /// [`AccelError::Serving`].  Event loops that poll tickets should drop
    /// the ticket on `Some`.
    pub fn try_wait(&self) -> Option<Result<RunReport>> {
        match self.receiver.try_recv() {
            Ok(report) => Some(report),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(AccelError::Serving {
                context: "server shut down before the inference completed".to_string(),
            })),
        }
    }
}

/// A settled tagged submission, delivered through the channel half of a
/// [`CompletionSink`] — the non-blocking counterpart of a [`Ticket`].
#[derive(Debug)]
pub struct Completion {
    /// The caller-chosen tag passed to [`StreamServer::submit_tagged`].
    pub tag: u64,
    /// The inference outcome, bit-identical to what the matching
    /// [`Ticket::wait`] would have returned.
    pub result: Result<RunReport>,
}

/// The delivery side of the non-blocking completion path.
///
/// Built with [`CompletionSink::new`], which returns the sink (handed to
/// [`StreamServer::submit_tagged`], clonable) and the receiver the caller
/// drains.  When a tagged inference settles, the dispatcher pushes a
/// [`Completion`] into the channel **and then** invokes the waker — so a
/// reactor blocked in `poll(2)` can use the waker to write one byte into a
/// wake pipe and is guaranteed to observe the completion after waking.  No
/// thread ever blocks on a reply channel.
#[derive(Clone)]
pub struct CompletionSink {
    sender: mpsc::Sender<Completion>,
    waker: Arc<dyn Fn() + Send + Sync>,
}

impl fmt::Debug for CompletionSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompletionSink").finish_non_exhaustive()
    }
}

impl CompletionSink {
    /// Creates a sink and its completion receiver.  `waker` is called by
    /// the dispatcher thread after every completion it enqueues; it must be
    /// cheap and must not block (e.g. a non-blocking one-byte pipe write).
    pub fn new(waker: Arc<dyn Fn() + Send + Sync>) -> (Self, mpsc::Receiver<Completion>) {
        let (sender, receiver) = mpsc::channel();
        (CompletionSink { sender, waker }, receiver)
    }
}

enum ReplyTo {
    /// Per-submission channel behind a [`Ticket`] (blocking callers).
    Ticket(mpsc::Sender<Result<RunReport>>),
    /// Shared completion queue with a tag (non-blocking callers).
    Sink { tag: u64, sink: CompletionSink },
}

struct Submission {
    input: Tensor<f32>,
    reply: ReplyTo,
    /// When the submission entered the queue (the deadline's clock zero).
    enqueued_at: Instant,
    /// Effective queue-wait deadline: the tighter of the per-request
    /// deadline and [`ServerOptions::max_queue_wait`], resolved at
    /// admission.  `None` never expires.
    deadline: Option<Duration>,
}

impl Submission {
    /// Whether this submission's queue wait has reached its deadline at
    /// `now` (a shed happens strictly before compute, so "reached" — not
    /// "exceeded" — is the boundary: a zero deadline always sheds).
    fn expired_at(&self, now: Instant) -> bool {
        match self.deadline {
            Some(deadline) => now.duration_since(self.enqueued_at) >= deadline,
            None => false,
        }
    }

    /// Delivers `result` to whichever completion path this submission
    /// uses (dropped tickets and closed sinks just mean the client
    /// stopped listening; the waker fires strictly after the send).
    fn settle(self, result: Result<RunReport>) {
        match self.reply {
            ReplyTo::Ticket(reply) => {
                let _ = reply.send(result);
            }
            ReplyTo::Sink { tag, sink } => {
                if sink.sender.send(Completion { tag, result }).is_ok() {
                    (sink.waker)();
                }
            }
        }
    }
}

#[derive(Default)]
struct SubmissionQueue {
    jobs: VecDeque<Submission>,
    shutdown: bool,
}

/// How many recent micro-batch completions the drain-rate window keeps
/// (the "recent" in [`QueueSnapshot::drain_rate_ips`]).
pub const DRAIN_WINDOW_BATCHES: usize = 32;

struct StatsAccum {
    completed: u64,
    errors: u64,
    batches: u64,
    largest_batch: usize,
    rejected: u64,
    panics: u64,
    deadline_sheds: u64,
    /// `(completion instant, inferences settled)` of the most recent
    /// micro-batches, capped at [`DRAIN_WINDOW_BATCHES`] entries — the
    /// basis of the *recent* drain rate in [`QueueSnapshot`].
    recent: VecDeque<(Instant, u64)>,
}

struct ServerShared {
    accel: Accelerator,
    model: SnnModel,
    program: Program,
    options: ServerOptions,
    queue: Mutex<SubmissionQueue>,
    ready: Condvar,
    stats: Mutex<StatsAccum>,
    started: Instant,
}

/// Snapshot of a server's serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Inferences completed successfully.
    pub completed: u64,
    /// Inferences that returned an error.
    pub errors: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Largest micro-batch dispatched so far.
    pub largest_batch: usize,
    /// Submissions rejected by the bounded-queue admission policy.
    pub rejected: u64,
    /// Engine panics caught at the micro-batch item boundary: each one
    /// failed exactly one inference with [`AccelError::EnginePanic`]
    /// (also counted in `errors`) and left the dispatcher, its batch
    /// siblings and the server running.
    pub panics: u64,
    /// Submissions shed from the queue before compute because their queue
    /// wait reached its deadline (see [`ServerOptions::max_queue_wait`]);
    /// like `rejected`, these are backpressure and are *not* counted in
    /// `errors` or `completed`.
    pub deadline_sheds: u64,
    /// Live queue-depth / drain-rate snapshot (see [`QueueSnapshot`]).
    /// The drain rate is windowed over the most recent
    /// [`DRAIN_WINDOW_BATCHES`] micro-batch completions, measured
    /// completion-to-completion so idle lulls do not decay it; with fewer
    /// than two windowed batches it falls back to the lifetime average.
    /// Across successive snapshots the cumulative counters in this struct
    /// (`completed`, `errors`, `batches`, `rejected`) are monotone
    /// non-decreasing, and `queue.depth` never exceeds `queue.capacity`.
    pub queue: QueueSnapshot,
    /// Configured micro-batch cap.
    pub max_batch: usize,
    /// Configured submission-queue capacity.
    pub queue_capacity: usize,
    /// Effective global thread budget the server draws from.
    pub thread_budget: usize,
    /// Wall-clock seconds since the server started.
    pub elapsed_s: f64,
    /// Modelled per-unit busy/idle occupancy of one inference (identical
    /// for every inference of the compiled model).
    pub utilisation: Vec<UnitUtilisation>,
}

impl ServerStats {
    /// Completed inferences per wall-clock second since start-up.
    pub fn throughput_ips(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.elapsed_s
    }

    /// Mean micro-batch size (`0.0` before the first batch).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        (self.completed + self.errors) as f64 / self.batches as f64
    }
}

/// Fallback retry hint when a server has not yet drained anything, so no
/// drain rate is measurable (milliseconds).
pub const DEFAULT_RETRY_AFTER_MS: u64 = 100;

/// Upper clamp of [`QueueSnapshot::retry_after_ms`] (one minute).
pub const MAX_RETRY_AFTER_MS: u64 = 60_000;

/// A cheap point-in-time view of the submission queue's load: how deep it
/// is, how big it may grow, and how fast the dispatcher has recently been
/// draining it.
///
/// Produced by [`StreamServer::queue_snapshot`] (two short lock holds, no
/// allocation) and embedded in [`ServerStats::queue`].  This is the signal
/// a network front-end turns into *retry-after* hints on rejected
/// submissions, closing the loop on the reject-when-full admission policy:
/// a shed client learns not just that the server is full but when capacity
/// is likely to reappear.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueSnapshot {
    /// Submissions currently queued and not yet dispatched.
    pub depth: usize,
    /// Configured queue capacity ([`ServerOptions::queue_capacity`]).
    pub capacity: usize,
    /// Recent drain rate in inferences per second: inferences settled
    /// across the last [`DRAIN_WINDOW_BATCHES`] micro-batches divided by
    /// the span between the oldest and newest of those completions — a
    /// completion-to-completion measure, so idle periods do not decay it
    /// (falling back to the lifetime average, and `0.0` before anything
    /// has been served).
    pub drain_rate_ips: f64,
}

impl QueueSnapshot {
    /// Whether the next submission would be rejected.
    pub fn is_full(&self) -> bool {
        self.depth >= self.capacity
    }

    /// Milliseconds a rejected client should wait before retrying: the time
    /// the dispatcher needs to drain the current queue depth at the recent
    /// drain rate, clamped to `1..=`[`MAX_RETRY_AFTER_MS`].
    ///
    /// Returns `0` when the queue is empty (retry immediately) and
    /// [`DEFAULT_RETRY_AFTER_MS`] when no drain rate is measurable yet.
    pub fn retry_after_ms(&self) -> u64 {
        if self.depth == 0 {
            return 0;
        }
        if self.drain_rate_ips <= 0.0 {
            return DEFAULT_RETRY_AFTER_MS;
        }
        let ms = (self.depth as f64 / self.drain_rate_ips * 1000.0).ceil() as u64;
        ms.clamp(1, MAX_RETRY_AFTER_MS)
    }
}

/// Streaming micro-batching inference server.  See the module docs.
#[derive(Debug)]
pub struct StreamServer {
    shared: Arc<ServerShared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerShared")
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl StreamServer {
    /// Starts a server for `model` on an accelerator with `config` and
    /// default [`ServerOptions`].  The model is compiled once, up front.
    ///
    /// # Errors
    ///
    /// Returns an error when the model cannot be mapped onto the
    /// configuration.
    pub fn start(config: AcceleratorConfig, model: SnnModel) -> Result<Self> {
        Self::start_with(config, model, ServerOptions::default())
    }

    /// Starts a server with explicit options.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for degenerate options — a
    /// `max_batch` of `0` (the dispatcher could never drain a micro-batch)
    /// or a `queue_capacity` of `0` (every submission would be rejected) —
    /// and otherwise the errors of [`StreamServer::start`].
    pub fn start_with(
        config: AcceleratorConfig,
        model: SnnModel,
        options: ServerOptions,
    ) -> Result<Self> {
        if options.max_batch == 0 {
            return Err(AccelError::InvalidConfig {
                context: "ServerOptions::max_batch is 0: the dispatcher could never drain \
                          a micro-batch"
                    .to_string(),
            });
        }
        if options.queue_capacity == 0 {
            return Err(AccelError::InvalidConfig {
                context: "ServerOptions::queue_capacity is 0: every submission would be \
                          rejected (shut the server down to drain it instead)"
                    .to_string(),
            });
        }
        let accel = Accelerator::with_options(config, options.exec);
        let program = accel.compile(&model)?;
        let shared = Arc::new(ServerShared {
            accel,
            model,
            program,
            options,
            queue: Mutex::new(SubmissionQueue::default()),
            ready: Condvar::new(),
            stats: Mutex::new(StatsAccum {
                completed: 0,
                errors: 0,
                batches: 0,
                largest_batch: 0,
                rejected: 0,
                panics: 0,
                deadline_sheds: 0,
                recent: VecDeque::new(),
            }),
            started: Instant::now(),
        });
        let dispatcher_shared = Arc::clone(&shared);
        let dispatcher = thread::Builder::new()
            .name("snn-serve-dispatch".to_string())
            .spawn(move || dispatch_loop(&dispatcher_shared))
            .expect("spawn dispatcher thread");
        Ok(StreamServer {
            shared,
            dispatcher: Some(dispatcher),
        })
    }

    /// Enqueues one input for inference and returns its [`Ticket`].
    ///
    /// Never blocks: admission is governed by the bounded-queue policy in
    /// the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::QueueFull`] when the submission queue already
    /// holds [`ServerOptions::queue_capacity`] undispatched inputs (the
    /// rejection is also counted in [`ServerStats::rejected`]), and
    /// [`AccelError::Serving`] when the server has begun shutting down.
    pub fn submit(&self, input: Tensor<f32>) -> Result<Ticket> {
        self.submit_within(input, None)
    }

    /// Like [`StreamServer::submit`] with a per-request **queue-wait
    /// deadline**: if the submission is still undispatched after
    /// `deadline`, it is shed before compute and the ticket resolves with
    /// [`AccelError::DeadlineExceeded`] (counted in
    /// [`ServerStats::deadline_sheds`]).  The effective deadline is the
    /// tighter of `deadline` and [`ServerOptions::max_queue_wait`]; `None`
    /// defers entirely to the server-wide bound.
    ///
    /// # Errors
    ///
    /// Admission errors exactly as [`StreamServer::submit`]; the deadline
    /// only governs what happens after admission.
    pub fn submit_within(&self, input: Tensor<f32>, deadline: Option<Duration>) -> Result<Ticket> {
        let (reply, receiver) = mpsc::channel();
        self.enqueue(input, ReplyTo::Ticket(reply), deadline)?;
        Ok(Ticket { receiver })
    }

    /// Enqueues one input whose result is delivered as a [`Completion`]
    /// carrying `tag` through `sink`'s channel — the **non-blocking**
    /// completion path: no thread waits on a ticket; the dispatcher pushes
    /// the completion and invokes the sink's waker.  This is how an
    /// event-loop front-end (the `snn-net` reactor) keeps many inferences
    /// in flight per connection without parking a thread on each.
    ///
    /// Admission is identical to [`StreamServer::submit`] — same bounded
    /// queue, same typed rejections — and results are bit-identical to the
    /// matching blocking call.
    ///
    /// # Errors
    ///
    /// [`AccelError::QueueFull`] and [`AccelError::Serving`] exactly as
    /// [`StreamServer::submit`]; a rejected submission produces **no**
    /// completion, so callers settle the request from the error in hand.
    pub fn submit_tagged(&self, input: Tensor<f32>, tag: u64, sink: &CompletionSink) -> Result<()> {
        self.submit_tagged_within(input, tag, sink, None)
    }

    /// Like [`StreamServer::submit_tagged`] with a per-request queue-wait
    /// deadline (see [`StreamServer::submit_within`]).  An expired
    /// submission **does** produce a completion — carrying
    /// [`AccelError::DeadlineExceeded`] — because the front-end needs to
    /// answer the request it already accepted.
    ///
    /// # Errors
    ///
    /// Admission errors exactly as [`StreamServer::submit_tagged`].
    pub fn submit_tagged_within(
        &self,
        input: Tensor<f32>,
        tag: u64,
        sink: &CompletionSink,
        deadline: Option<Duration>,
    ) -> Result<()> {
        self.enqueue(
            input,
            ReplyTo::Sink {
                tag,
                sink: sink.clone(),
            },
            deadline,
        )
    }

    fn enqueue(
        &self,
        input: Tensor<f32>,
        reply: ReplyTo,
        deadline: Option<Duration>,
    ) -> Result<()> {
        let deadline = match (deadline, self.shared.options.max_queue_wait) {
            (Some(request), Some(server)) => Some(request.min(server)),
            (Some(request), None) => Some(request),
            (None, server) => server,
        };
        {
            let mut queue = self.shared.queue.lock().expect("submission queue lock");
            if queue.shutdown {
                return Err(AccelError::Serving {
                    context: "server is shutting down and no longer accepts submissions"
                        .to_string(),
                });
            }
            if queue.jobs.len() >= self.shared.options.queue_capacity {
                let queued = queue.jobs.len();
                drop(queue);
                let mut accum = self.shared.stats.lock().expect("server stats lock");
                accum.rejected += 1;
                return Err(AccelError::QueueFull {
                    queued,
                    capacity: self.shared.options.queue_capacity,
                });
            }
            queue.jobs.push_back(Submission {
                input,
                reply,
                enqueued_at: Instant::now(),
                deadline,
            });
        }
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Submits all `inputs` and waits for all results, in order.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered — including an admission
    /// rejection, which cancels the not-yet-submitted remainder; already
    /// accepted inferences still complete server-side.
    pub fn run_all(&self, inputs: &[Tensor<f32>]) -> Result<Vec<RunReport>> {
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|i| self.submit(i.clone()))
            .collect::<Result<_>>()?;
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Cheap point-in-time queue-load snapshot: depth, capacity and the
    /// recent drain rate — the inputs of a retry-after hint.  Takes the
    /// queue and stats locks briefly (never both at once) and allocates
    /// nothing.
    pub fn queue_snapshot(&self) -> QueueSnapshot {
        let depth = self
            .shared
            .queue
            .lock()
            .expect("submission queue lock")
            .jobs
            .len();
        let accum = self.shared.stats.lock().expect("server stats lock");
        QueueSnapshot {
            depth,
            capacity: self.shared.options.queue_capacity,
            drain_rate_ips: drain_rate_ips(&accum, &self.shared.started),
        }
    }

    /// Snapshot of the serving statistics.
    pub fn stats(&self) -> ServerStats {
        let queue = self.queue_snapshot();
        let accum = self.shared.stats.lock().expect("server stats lock");
        ServerStats {
            completed: accum.completed,
            errors: accum.errors,
            batches: accum.batches,
            largest_batch: accum.largest_batch,
            rejected: accum.rejected,
            panics: accum.panics,
            deadline_sheds: accum.deadline_sheds,
            queue,
            max_batch: self.shared.options.max_batch,
            queue_capacity: self.shared.options.queue_capacity,
            thread_budget: snn_parallel::budget().total(),
            elapsed_s: self.shared.started.elapsed().as_secs_f64(),
            utilisation: utilisation_from_program(self.shared.accel.config(), &self.shared.program),
        }
    }

    /// Drains the queue, stops the dispatcher and returns the final
    /// statistics.  Queued-but-undispatched submissions are still served;
    /// submissions after shutdown starts are not.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("submission queue lock");
            queue.shutdown = true;
        }
        self.shared.ready.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            handle.join().expect("dispatcher thread");
        }
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Recent drain rate in inferences/second, measured **completion to
/// completion** across the window: the inferences settled after the oldest
/// windowed batch, divided by the span between the oldest and newest batch
/// completions.  Anchoring both ends on completions (rather than on "now")
/// keeps the rate a measure of how fast the dispatcher drains *when it is
/// draining* — an idle lull must not decay it, or the retry-after hints
/// derived from it would balloon after every quiet period.  Falls back to
/// the lifetime average (fewer than two windowed batches) and then `0.0`.
fn drain_rate_ips(accum: &StatsAccum, started: &Instant) -> f64 {
    if let (Some(&(oldest, oldest_items)), Some(&(newest, _))) =
        (accum.recent.front(), accum.recent.back())
    {
        let span = newest.duration_since(oldest).as_secs_f64();
        // The oldest record marks the window start; its items settled at
        // (not during) the measured span.
        let items: u64 = accum.recent.iter().map(|&(_, n)| n).sum::<u64>() - oldest_items;
        if span > 0.0 && items > 0 {
            return items as f64 / span;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let settled = accum.completed + accum.errors;
    if elapsed > 0.0 && settled > 0 {
        return settled as f64 / elapsed;
    }
    0.0
}

fn dispatch_loop(shared: &ServerShared) {
    let max_batch = shared.options.max_batch.max(1);
    loop {
        // Collect the next micro-batch: everything queued, capped.
        let batch: Vec<Submission> = {
            let mut queue = shared.queue.lock().expect("submission queue lock");
            loop {
                if !queue.jobs.is_empty() {
                    let take = queue.jobs.len().min(max_batch);
                    break queue.jobs.drain(..take).collect();
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.ready.wait(queue).expect("submission queue wait");
            }
        };

        // Shed expired entries *before* compute: work the client has
        // already given up on is answered with a typed error at queue
        // cost, not computed late at full cost.
        let now = Instant::now();
        let (batch, expired): (Vec<Submission>, Vec<Submission>) =
            batch.into_iter().partition(|s| !s.expired_at(now));
        if !expired.is_empty() {
            {
                let mut accum = shared.stats.lock().expect("server stats lock");
                accum.deadline_sheds += expired.len() as u64;
            }
            for submission in expired {
                let waited_ms = now.duration_since(submission.enqueued_at).as_millis() as u64;
                let deadline_ms = submission
                    .deadline
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0);
                submission.settle(Err(AccelError::DeadlineExceeded {
                    waited_ms,
                    deadline_ms,
                }));
            }
        }
        if batch.is_empty() {
            continue;
        }

        // Execute the micro-batch over the shared worker pool.  Each item
        // runs under its own unwind guard: a panicking inference fails
        // only itself with the typed `EnginePanic`, never the dispatcher
        // (snn-parallel would otherwise re-raise the task panic here and
        // kill the serving loop).
        let threads = snn_parallel::budget().total().min(batch.len());
        let reports = snn_parallel::par_map(&batch, threads, |_, submission| {
            snn_parallel::catch_panic_message(|| {
                #[cfg(feature = "fault-injection")]
                poison::check(&submission.input);
                shared.accel.execute_compiled(
                    &shared.model,
                    &shared.program,
                    &submission.input,
                    shared.options.mode,
                    shared.options.exec,
                )
            })
            .unwrap_or_else(|message| Err(AccelError::EnginePanic { context: message }))
        });

        let completed = reports.iter().filter(|r| r.is_ok()).count() as u64;
        let errors = reports.len() as u64 - completed;
        let panics = reports
            .iter()
            .filter(|r| matches!(r, Err(AccelError::EnginePanic { .. })))
            .count() as u64;
        // Count before replying, so a client that has its result in hand
        // is guaranteed to find it reflected in the server statistics.
        {
            let mut accum = shared.stats.lock().expect("server stats lock");
            accum.completed += completed;
            accum.errors += errors;
            accum.panics += panics;
            accum.batches += 1;
            accum.largest_batch = accum.largest_batch.max((completed + errors) as usize);
            accum.recent.push_back((Instant::now(), completed + errors));
            if accum.recent.len() > DRAIN_WINDOW_BATCHES {
                accum.recent.pop_front();
            }
        }
        for (submission, report) in batch.into_iter().zip(reports) {
            // Waker strictly after the send (inside `settle`): a reactor
            // woken by the pipe byte must find the completion queued.
            submission.settle(report);
        }
    }
}

/// Deliberate crash trigger for fault-injection builds: an input whose
/// first element is the [`poison::PILL_BITS`] sentinel makes the engine panic
/// inside the micro-batch, exercising the `catch_unwind` isolation path
/// end-to-end (including over the wire, since f32 bit patterns round-trip
/// through the `snn-net` protocol).  Compiled only with the
/// `fault-injection` feature; release builds pay nothing.
#[cfg(feature = "fault-injection")]
pub mod poison {
    use snn_tensor::Tensor;

    /// Bit pattern of the sentinel: a quiet NaN with a recognizable
    /// payload, so no legitimate input (finite activations) collides.
    pub const PILL_BITS: u32 = 0x7fc0_dead;

    /// The poison-pill value a test writes into an input's first element.
    pub fn pill() -> f32 {
        f32::from_bits(PILL_BITS)
    }

    /// Panics when `input` leads with the sentinel.  Called inside the
    /// dispatcher's per-item unwind guard.
    pub(crate) fn check(input: &Tensor<f32>) {
        if input.as_slice().first().map(|v| v.to_bits()) == Some(PILL_BITS) {
            panic!("fault-injection poison pill in input");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
    use snn_model::params::Parameters;
    use snn_model::zoo;

    fn tiny_setup(time_steps: usize) -> (SnnModel, Vec<Tensor<f32>>) {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 11).unwrap();
        let inputs: Vec<Tensor<f32>> = (0..6)
            .map(|i| {
                let values: Vec<f32> = (0..144)
                    .map(|j| ((i * 17 + j * 5) % 100) as f32 / 100.0)
                    .collect();
                Tensor::from_vec(vec![1, 12, 12], values).unwrap()
            })
            .collect();
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let model = convert(
            &net,
            &params,
            &stats,
            ConversionConfig {
                weight_bits: 3,
                time_steps,
            },
        )
        .unwrap();
        (model, inputs)
    }

    #[test]
    fn served_reports_match_solo_runs_bit_exactly() {
        let (model, inputs) = tiny_setup(4);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start(config, model.clone()).unwrap();
        let served = server.run_all(&inputs).unwrap();
        let accel = Accelerator::new(config);
        for (report, input) in served.iter().zip(&inputs) {
            let solo = accel.run(&model, input).unwrap();
            assert_eq!(report, &solo);
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, inputs.len() as u64);
        assert_eq!(stats.errors, 0);
        assert!(stats.batches >= 1);
        assert!(stats.largest_batch <= stats.max_batch);
        assert!(!stats.utilisation.is_empty());
    }

    #[test]
    fn transaction_mode_matches_run_fast() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start_with(
            config,
            model.clone(),
            ServerOptions {
                mode: ExecutionMode::Transaction,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let served = server.run_all(&inputs).unwrap();
        let accel = Accelerator::new(config);
        for (report, input) in served.iter().zip(&inputs) {
            let solo = accel.run_fast(&model, input).unwrap();
            assert_eq!(report, &solo);
        }
    }

    #[test]
    fn micro_batch_of_one_works() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_batch: 1,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let served = server.run_all(&inputs[..2]).unwrap();
        assert_eq!(served.len(), 2);
        let stats = server.shutdown();
        assert_eq!(stats.batches, 2);
        assert!((stats.mean_batch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_inputs_error_without_stalling_the_server() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let bad = server
            .submit(Tensor::filled(vec![1, 8, 8], 0.5f32))
            .unwrap();
        let good = server.submit(inputs[0].clone()).unwrap();
        assert!(bad.wait().is_err());
        assert!(good.wait().is_ok());
        let stats = server.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn unmappable_model_is_rejected_at_startup() {
        let (model, _) = tiny_setup(3);
        let config = AcceleratorConfig {
            conv_units: 0,
            ..AcceleratorConfig::default()
        };
        assert!(StreamServer::start(config, model).is_err());
    }

    #[test]
    fn shutdown_before_dispatch_resolves_tickets_with_an_error_or_result() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let ticket = server.submit(inputs[0].clone()).unwrap();
        // Shutdown drains the queue first, so this ticket resolves with a
        // report rather than hanging.
        let stats = server.shutdown();
        assert!(ticket.wait().is_ok());
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn degenerate_options_are_rejected_at_construction() {
        for options in [
            ServerOptions {
                queue_capacity: 0,
                ..ServerOptions::default()
            },
            ServerOptions {
                max_batch: 0,
                ..ServerOptions::default()
            },
        ] {
            let (model, _) = tiny_setup(3);
            match StreamServer::start_with(AcceleratorConfig::default(), model, options) {
                Err(AccelError::InvalidConfig { context }) => {
                    assert!(context.contains("ServerOptions"), "context: {context}");
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn full_queue_rejects_with_typed_error_and_counts() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_batch: 1,
                queue_capacity: 1,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        // Submitting is orders of magnitude faster than inference, so a
        // tight loop must fill the one-slot queue long before the bounded
        // attempt cap: once the dispatcher is busy with an earlier input
        // and one more waits, the next submission is shed.
        let mut tickets = Vec::new();
        let mut rejection = None;
        for _ in 0..10_000 {
            match server.submit(inputs[0].clone()) {
                Ok(ticket) => tickets.push(ticket),
                Err(err) => {
                    rejection = Some(err);
                    break;
                }
            }
        }
        match rejection.expect("a rejection within the attempt cap") {
            AccelError::QueueFull { queued, capacity } => {
                assert_eq!(queued, 1);
                assert_eq!(capacity, 1);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // A full queue yields a positive retry hint.
        let snapshot = server.queue_snapshot();
        assert_eq!(snapshot.capacity, 1);
        if snapshot.is_full() {
            assert!(snapshot.retry_after_ms() >= 1);
        }
        // Accepted inferences still complete.
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let stats = server.shutdown();
        assert!(stats.rejected >= 1);
        assert!(stats.completed >= 1);
    }

    #[test]
    fn queue_snapshot_reports_depth_capacity_and_drain_rate() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let before = server.queue_snapshot();
        assert_eq!(before.capacity, DEFAULT_QUEUE_CAPACITY);
        assert!(!before.is_full());
        assert_eq!(before.retry_after_ms(), 0, "empty queue: retry now");
        server.run_all(&inputs).unwrap();
        let after = server.queue_snapshot();
        assert_eq!(after.depth, 0, "run_all drained everything");
        assert!(after.drain_rate_ips > 0.0, "served work implies a rate");
        let stats = server.shutdown();
        assert_eq!(stats.queue.capacity, DEFAULT_QUEUE_CAPACITY);
    }

    #[test]
    fn retry_hint_math_covers_the_fallbacks() {
        let empty = QueueSnapshot {
            depth: 0,
            capacity: 8,
            drain_rate_ips: 100.0,
        };
        assert_eq!(empty.retry_after_ms(), 0);
        let unmeasured = QueueSnapshot {
            depth: 3,
            capacity: 8,
            drain_rate_ips: 0.0,
        };
        assert_eq!(unmeasured.retry_after_ms(), DEFAULT_RETRY_AFTER_MS);
        let typical = QueueSnapshot {
            depth: 5,
            capacity: 8,
            drain_rate_ips: 50.0,
        };
        // 5 inferences at 50/s = 100 ms.
        assert_eq!(typical.retry_after_ms(), 100);
        let glacial = QueueSnapshot {
            depth: 1000,
            capacity: 1000,
            drain_rate_ips: 0.001,
        };
        assert_eq!(glacial.retry_after_ms(), MAX_RETRY_AFTER_MS);
    }

    #[test]
    fn try_wait_polls_without_blocking_and_matches_wait() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start(config, model.clone()).unwrap();
        let ticket = server.submit(inputs[0].clone()).unwrap();
        // Poll until it settles (bounded, far beyond any plausible run).
        let mut polled = None;
        for _ in 0..20_000 {
            if let Some(result) = ticket.try_wait() {
                polled = Some(result);
                break;
            }
            thread::sleep(std::time::Duration::from_micros(200));
        }
        let report = polled
            .expect("inference settles within the poll cap")
            .unwrap();
        let solo = Accelerator::new(config).run(&model, &inputs[0]).unwrap();
        assert_eq!(report, solo, "polled result equals the blocking oracle");
        // The result was delivered once; the drained ticket is dead.
        match ticket.try_wait() {
            Some(Err(AccelError::Serving { .. })) => {}
            other => panic!("expected a dead ticket, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn tagged_submissions_complete_through_the_sink_with_a_wake_per_completion() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start(config, model.clone()).unwrap();
        let wakes = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let wakes_in_waker = Arc::clone(&wakes);
        let (sink, completions) = CompletionSink::new(Arc::new(move || {
            wakes_in_waker.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }));
        for (tag, input) in inputs.iter().enumerate() {
            server
                .submit_tagged(input.clone(), tag as u64, &sink)
                .unwrap();
        }
        let mut seen = vec![false; inputs.len()];
        let accel = Accelerator::new(config);
        for _ in 0..inputs.len() {
            let completion = completions
                .recv_timeout(std::time::Duration::from_secs(60))
                .expect("completion arrives");
            let tag = completion.tag as usize;
            assert!(!seen[tag], "tag {tag} delivered twice");
            seen[tag] = true;
            let report = completion.result.unwrap();
            let solo = accel.run(&model, &inputs[tag]).unwrap();
            assert_eq!(report, solo, "tagged result equals the solo oracle");
        }
        assert!(seen.iter().all(|&s| s), "every tag completed");
        assert_eq!(
            wakes.load(std::sync::atomic::Ordering::SeqCst),
            inputs.len(),
            "one wake per completion, sent after the enqueue"
        );
        let stats = server.shutdown();
        assert_eq!(stats.completed, inputs.len() as u64);
    }

    #[test]
    fn tagged_rejections_produce_no_completion() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_batch: 1,
                queue_capacity: 1,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (sink, completions) = CompletionSink::new(Arc::new(|| {}));
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for tag in 0..10_000 {
            match server.submit_tagged(inputs[0].clone(), tag, &sink) {
                Ok(()) => accepted += 1,
                Err(AccelError::QueueFull { .. }) => {
                    rejected += 1;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected >= 1, "the one-slot queue must shed");
        // Exactly the accepted submissions complete; the rejection never
        // surfaces in the completion channel.
        let mut settled = 0u64;
        while let Ok(completion) = completions.recv_timeout(std::time::Duration::from_secs(60)) {
            completion.result.unwrap();
            settled += 1;
            if settled == accepted {
                break;
            }
        }
        assert_eq!(settled, accepted);
        server.shutdown();
    }

    #[test]
    fn snapshots_and_stats_are_monotone_under_load() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .cycle()
            .take(12)
            .map(|input| server.submit(input.clone()).unwrap())
            .collect();
        // Interleave snapshots with the draining queue: the cumulative
        // counters never step backwards and the live depth stays within the
        // configured bound at every observation.
        let mut last = server.stats();
        for ticket in tickets {
            ticket.wait().unwrap();
            let snapshot = server.queue_snapshot();
            assert!(snapshot.depth <= snapshot.capacity);
            assert_eq!(snapshot.capacity, DEFAULT_QUEUE_CAPACITY);
            let stats = server.stats();
            assert!(stats.completed >= last.completed, "completed is monotone");
            assert!(stats.errors >= last.errors, "errors is monotone");
            assert!(stats.batches >= last.batches, "batches is monotone");
            assert!(stats.rejected >= last.rejected, "rejected is monotone");
            assert!(stats.elapsed_s >= last.elapsed_s, "elapsed is monotone");
            last = stats;
        }
        let final_stats = server.shutdown();
        assert_eq!(final_stats.completed, 12);
    }

    #[test]
    fn zero_max_queue_wait_sheds_everything_before_compute() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_queue_wait: Some(Duration::ZERO),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .take(3)
            .map(|input| server.submit(input.clone()).unwrap())
            .collect();
        for ticket in tickets {
            match ticket.wait() {
                Err(AccelError::DeadlineExceeded { deadline_ms, .. }) => {
                    assert_eq!(deadline_ms, 0);
                }
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.deadline_sheds, 3);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.errors, 0, "sheds are backpressure, not errors");
    }

    #[test]
    fn per_request_deadline_sheds_only_the_impatient_submission() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        // Keep the dispatcher busy so the impatient submission queues.
        let busy = server.submit(inputs[0].clone()).unwrap();
        let impatient = server
            .submit_within(inputs[1].clone(), Some(Duration::ZERO))
            .unwrap();
        let patient = server.submit_within(inputs[2].clone(), None).unwrap();
        busy.wait().unwrap();
        match impatient.wait() {
            Err(AccelError::DeadlineExceeded { .. }) => {}
            // The dispatcher may have drained all three into the first
            // micro-batch before the busy inference even started; in that
            // case nothing waited and nothing sheds.  Accept either, but
            // the patient submission must always complete.
            Ok(_) => {}
            other => panic!("expected DeadlineExceeded or a report, got {other:?}"),
        }
        patient.wait().unwrap();
        server.shutdown();
    }

    #[test]
    fn tagged_deadline_sheds_deliver_a_completion() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_queue_wait: Some(Duration::ZERO),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (sink, completions) = CompletionSink::new(Arc::new(|| {}));
        server
            .submit_tagged_within(inputs[0].clone(), 7, &sink, None)
            .unwrap();
        let completion = completions
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("shed submissions still complete through the sink");
        assert_eq!(completion.tag, 7);
        match completion.result {
            Err(AccelError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = server.shutdown();
        assert!(stats.deadline_sheds >= 1);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn engine_panic_fails_one_item_and_the_server_survives() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start(config, model.clone()).unwrap();
        let mut poisoned_values = inputs[0].as_slice().to_vec();
        poisoned_values[0] = poison::pill();
        let poisoned = Tensor::from_vec(vec![1, 12, 12], poisoned_values).unwrap();
        let bad = server.submit(poisoned).unwrap();
        let good = server.submit(inputs[1].clone()).unwrap();
        match bad.wait() {
            Err(AccelError::EnginePanic { context }) => {
                assert!(context.contains("poison pill"), "context: {context}");
            }
            other => panic!("expected EnginePanic, got {other:?}"),
        }
        // The sibling and a fresh submission both complete, bit-exactly.
        let report = good.wait().unwrap();
        let solo = Accelerator::new(config).run(&model, &inputs[1]).unwrap();
        assert_eq!(report, solo);
        let fresh = server.submit(inputs[2].clone()).unwrap();
        fresh.wait().unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.errors, 1, "the panic counts as an error too");
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn default_capacity_admits_normal_traffic_without_rejections() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let served = server.run_all(&inputs).unwrap();
        assert_eq!(served.len(), inputs.len());
        let stats = server.shutdown();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.queue_capacity, DEFAULT_QUEUE_CAPACITY);
    }
}
