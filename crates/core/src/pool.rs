//! The pooling unit.
//!
//! Pooling units work on the same two-dimensional, row-based data as the
//! convolution units and reuse the same structure (Section III-B), but they
//! are much smaller: no kernel values need to be supplied to the adders and
//! no output logic is needed because pooling does not accumulate over input
//! channels.  Average pooling is adder-based, with the division by the
//! window size folded into the subsequent requantization (a right shift for
//! power-of-two windows); max pooling replaces the adders with comparators.

//! The pooling unit's counters were always analytical (the unit never
//! stepped them in a data loop): `cycles`, `activation_reads` and
//! `output_writes` follow from the closed-form schedule, and `adder_ops`
//! is the popcount of the streamed levels, now computed by the shared
//! [`snn_tensor::bitplane`] helper the sparse convolution and linear
//! engines also use for their derived statistics.

use crate::config::ArrayGeometry;
use crate::memory::RowBand;
use crate::units::UnitStats;
use crate::{AccelError, Result};
use snn_model::layer::PoolKind;
use snn_tensor::{bitplane, ops, Tensor};

/// Output of a pooling-unit layer execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolResult {
    /// Pooled activation levels `[C, H_out, W_out]`.
    pub levels: Tensor<i64>,
    /// Cycle and operation counters.
    pub stats: UnitStats,
}

/// Cycle-stepped model of the pooling unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolingUnit {
    geometry: ArrayGeometry,
}

impl PoolingUnit {
    /// Creates a pooling unit with the given adder/comparator array
    /// geometry.
    pub fn new(geometry: ArrayGeometry) -> Self {
        PoolingUnit { geometry }
    }

    /// The array geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Number of column tiles needed for an output row of `width` values.
    pub fn column_tiles(&self, width: usize) -> usize {
        width.div_ceil(self.geometry.columns)
    }

    /// Executes one pooling layer.
    ///
    /// Average pooling sums each window and divides by the window area with
    /// truncation (a right shift in hardware for power-of-two windows); max
    /// pooling takes the maximum level.  Both operate on the integer levels
    /// that the radix spike trains encode.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnsupportedLayer`] for non-3-D inputs or a
    /// window that does not fit.
    pub fn run_layer(
        &self,
        input_levels: &Tensor<i64>,
        kind: PoolKind,
        window: usize,
        time_steps: usize,
    ) -> Result<PoolResult> {
        let dims = input_levels.shape().dims();
        if dims.len() != 3 {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: "pooling unit expects a [C, H, W] input".to_string(),
            });
        }
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        let (h_out, w_out) = ops::pool_output_dims((h, w), window).map_err(AccelError::Tensor)?;

        let levels = match kind {
            PoolKind::Average => {
                ops::avg_pool2d(input_levels, window).map_err(AccelError::Tensor)?
            }
            PoolKind::Max => ops::max_pool2d(input_levels, window).map_err(AccelError::Tensor)?,
        };

        // Operation counting: the unit walks the input row-based, one binary
        // plane per time step, `window` input rows per output row.
        let mut stats = UnitStats::new();
        stats.cycles = self.layer_cycles(c, h_out, w_out, window, time_steps);
        stats.activation_reads =
            (time_steps * c * h_out * window * self.column_tiles(w_out)) as u64;
        stats.output_writes = (c * h_out * w_out) as u64;
        // Adder/comparator activations are gated by spikes, so count the
        // spikes streamed through the unit (every input element belongs to
        // exactly one window for non-overlapping pooling).
        stats.adder_ops = bitplane::popcount_levels(input_levels.as_slice());

        Ok(PoolResult { levels, stats })
    }

    /// Executes one **row-band tile** of a pooling layer.
    ///
    /// Pooling is non-overlapping and its schedule has no pipeline-fill
    /// term, so a band is simply the layer restricted to the band's rows:
    /// `band_levels` holds input rows `band.in_lo..band.in_hi` (which must
    /// start at `band.out_lo * window`; the final band also carries any
    /// trailing input rows a non-divisible height leaves unread, so the
    /// streamed spike count — `adder_ops` — partitions exactly).  Counters
    /// summed over a partition of the output rows reproduce
    /// [`PoolingUnit::run_layer`]'s counters bit-exactly.
    ///
    /// # Errors
    ///
    /// As [`PoolingUnit::run_layer`], plus [`AccelError::UnsupportedLayer`]
    /// when the band tensor does not match the band's row range or the
    /// band is not aligned to the pooling window.
    pub fn run_layer_band(
        &self,
        band_levels: &Tensor<i64>,
        kind: PoolKind,
        window: usize,
        time_steps: usize,
        band: &RowBand,
    ) -> Result<PoolResult> {
        let dims = band_levels.shape().dims();
        if dims.len() != 3 || dims[1] != band.in_rows() {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "pool band tensor {dims:?} does not span input rows {}..{}",
                    band.in_lo, band.in_hi
                ),
            });
        }
        if band.in_lo != band.out_lo * window {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "pool band input starts at row {} but output row {} pools from row {}",
                    band.in_lo,
                    band.out_lo,
                    band.out_lo * window
                ),
            });
        }
        self.run_layer(band_levels, kind, window, time_steps)
    }

    /// Closed-form cycle count of a pooling layer on this unit.
    pub fn layer_cycles(
        &self,
        channels: usize,
        h_out: usize,
        w_out: usize,
        window: usize,
        time_steps: usize,
    ) -> u64 {
        let tiles = self.column_tiles(w_out) as u64;
        // Per output row: `window` input rows are loaded and each is shifted
        // `window` times, exactly like a kernel row pass without weights.
        let per_row = (window as u64) * (window as u64 + 1);
        (time_steps as u64) * (channels as u64) * (h_out as u64) * tiles * per_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> PoolingUnit {
        PoolingUnit::new(ArrayGeometry {
            columns: 14,
            rows: 2,
        })
    }

    #[test]
    fn average_pooling_matches_reference() {
        let input =
            Tensor::from_vec(vec![2, 4, 4], (0..32).map(|v| (v % 7) as i64).collect()).unwrap();
        let result = unit().run_layer(&input, PoolKind::Average, 2, 3).unwrap();
        let expected = ops::avg_pool2d(&input, 2).unwrap();
        assert_eq!(result.levels, expected);
    }

    #[test]
    fn max_pooling_matches_reference() {
        let input = Tensor::from_vec(
            vec![1, 4, 4],
            vec![0i64, 5, 1, 2, 7, 3, 0, 0, 1, 1, 6, 6, 2, 2, 4, 3],
        )
        .unwrap();
        let result = unit().run_layer(&input, PoolKind::Max, 2, 3).unwrap();
        assert_eq!(result.levels.as_slice(), &[7, 2, 2, 6]);
    }

    #[test]
    fn cycles_match_closed_form_and_scale_with_time_steps() {
        let input = Tensor::filled(vec![3, 8, 8], 5i64);
        let u = unit();
        let r3 = u.run_layer(&input, PoolKind::Average, 2, 3).unwrap();
        let r6 = u.run_layer(&input, PoolKind::Average, 2, 6).unwrap();
        assert_eq!(r3.stats.cycles, u.layer_cycles(3, 4, 4, 2, 3));
        assert_eq!(r6.stats.cycles, 2 * r3.stats.cycles);
    }

    #[test]
    fn silent_input_uses_no_adders() {
        let input = Tensor::filled(vec![1, 4, 4], 0i64);
        let result = unit().run_layer(&input, PoolKind::Average, 2, 4).unwrap();
        assert_eq!(result.stats.adder_ops, 0);
    }

    #[test]
    fn pooling_unit_is_smaller_than_a_conv_unit_pass() {
        // No kernel reads at all — that is the area/power saving the paper
        // attributes to the pooling unit.
        let input = Tensor::filled(vec![1, 4, 4], 3i64);
        let result = unit().run_layer(&input, PoolKind::Average, 2, 3).unwrap();
        assert_eq!(result.stats.kernel_reads, 0);
    }

    #[test]
    fn row_bands_sum_to_the_untiled_layer() {
        use crate::memory::RowBand;
        // 9 input rows with a 2x2 window: the last band carries the
        // trailing unread row so the streamed spike counts partition.
        let input = Tensor::from_vec(
            vec![3, 9, 8],
            (0..3 * 9 * 8).map(|v| ((v * 13) % 16) as i64).collect(),
        )
        .unwrap();
        let u = unit();
        for kind in [PoolKind::Average, PoolKind::Max] {
            let whole = u.run_layer(&input, kind, 2, 4).unwrap();
            let dims = whole.levels.shape().dims().to_vec();
            let (h_out, w_out) = (dims[1], dims[2]);
            let mut summed = UnitStats::default();
            let mut stitched = Tensor::filled(dims.clone(), 0i64);
            for lo in (0..h_out).step_by(3) {
                let hi = (lo + 3).min(h_out);
                let band = RowBand {
                    out_lo: lo,
                    out_hi: hi,
                    in_lo: lo * 2,
                    in_hi: if hi == h_out { 9 } else { hi * 2 },
                };
                let mut band_data = Vec::new();
                for c in 0..3 {
                    band_data.extend_from_slice(
                        &input.as_slice()[c * 9 * 8 + band.in_lo * 8..c * 9 * 8 + band.in_hi * 8],
                    );
                }
                let band_input = Tensor::from_vec(vec![3, band.in_rows(), 8], band_data).unwrap();
                let part = u.run_layer_band(&band_input, kind, 2, 4, &band).unwrap();
                summed += part.stats;
                for c in 0..3 {
                    let bh = hi - lo;
                    stitched.as_mut_slice()
                        [c * h_out * w_out + lo * w_out..c * h_out * w_out + hi * w_out]
                        .copy_from_slice(
                            &part.levels.as_slice()[c * bh * w_out..(c + 1) * bh * w_out],
                        );
                }
            }
            assert_eq!(stitched, whole.levels, "{kind:?}");
            assert_eq!(summed, whole.stats, "{kind:?}");
        }
    }

    #[test]
    fn misaligned_pool_band_is_rejected() {
        use crate::memory::RowBand;
        let input = Tensor::filled(vec![1, 4, 4], 1i64);
        let band = RowBand {
            out_lo: 1,
            out_hi: 2,
            in_lo: 1, // should be out_lo * window = 2
            in_hi: 5,
        };
        assert!(matches!(
            unit().run_layer_band(&input, PoolKind::Average, 2, 3, &band),
            Err(AccelError::UnsupportedLayer { .. })
        ));
    }

    #[test]
    fn rejects_window_larger_than_input() {
        let input = Tensor::filled(vec![1, 2, 2], 1i64);
        assert!(unit().run_layer(&input, PoolKind::Average, 3, 3).is_err());
    }

    #[test]
    fn rejects_non_3d_input() {
        let input = Tensor::filled(vec![4, 4], 1i64);
        assert!(matches!(
            unit().run_layer(&input, PoolKind::Max, 2, 3),
            Err(AccelError::UnsupportedLayer { .. })
        ));
    }
}
