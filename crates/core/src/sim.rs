//! Top-level accelerator simulator.
//!
//! [`Accelerator`] owns a configuration, compiles converted SNN models onto
//! it and executes inferences.  Two execution paths are provided:
//!
//! * [`Accelerator::run`] — **unit-exact**: every layer is executed on the
//!   bit-plane sparse processing-unit models
//!   ([`crate::conv::ConvolutionUnit`], [`crate::pool::PoolingUnit`],
//!   [`crate::linear::LinearUnit`]), activations move through the ping-pong
//!   buffers, and exact work/operation counts are reported.  The units
//!   traverse packed spike planes (word-level skip of silent regions,
//!   output channels spread over worker threads) and *derive* their
//!   counters analytically from the static schedule plus plane popcounts;
//!   property tests pin both accumulators and counters to the retained
//!   counter-stepped models in [`crate::reference`].
//! * [`Accelerator::run_fast`] — **transaction-level**: activations are
//!   computed with the functional integer model of `snn-model` and only the
//!   analytical timing model is evaluated.  The results are bit-identical
//!   (asserted by tests); use this for large models such as VGG-11 where
//!   even the sparse engine is unnecessary.
//!
//! Batches of independent inputs can be dispatched over worker threads
//! with [`Accelerator::run_batch`] / [`Accelerator::run_fast_batch`]; each
//! input produces exactly the report a solo [`Accelerator::run`] would.

use crate::compiler::{self, Program};
use crate::config::{AcceleratorConfig, MemoryOption};
use crate::conv::ConvolutionUnit;
use crate::cost;
use crate::linear::LinearUnit;
use crate::memory::{MemoryTraffic, PingPongBuffer};
use crate::pool::PoolingUnit;
use crate::report::{DesignReport, LayerExecution, RunReport};
use crate::timing;
use crate::units::UnitStats;
use crate::{AccelError, Result};
use snn_model::snn::{requantize, SnnLayer, SnnModel};
use snn_tensor::Tensor;

/// The accelerator: a configuration plus the machinery to compile and run
/// converted SNN models on it.
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerator {
    config: AcceleratorConfig,
}

impl Accelerator {
    /// Creates an accelerator with the given configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        Accelerator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Compiles a model onto this accelerator.
    ///
    /// # Errors
    ///
    /// See [`compiler::compile`].
    pub fn compile(&self, model: &SnnModel) -> Result<Program> {
        compiler::compile(model, &self.config)
    }

    /// Produces the static design report (resources, power, predicted
    /// timing) for deploying `model` on this accelerator.
    ///
    /// # Errors
    ///
    /// Returns an error when the model cannot be mapped.
    pub fn design_report(&self, model: &SnnModel) -> Result<DesignReport> {
        let program = self.compile(model)?;
        let timing = timing::network_timing(&self.config, model.spec(), model.time_steps())?;
        Ok(DesignReport {
            resources: cost::estimate_resources(&self.config, model.spec(), model.time_steps()),
            power: cost::estimate_power(&self.config),
            activation_plan: program.activation_plan,
            weight_plan: program.weight_plan,
            timing,
        })
    }

    /// Runs one inference cycle-accurately on the processing-unit models.
    ///
    /// # Errors
    ///
    /// Returns an error when the model cannot be mapped onto the
    /// configuration or the input shape does not match the network.
    pub fn run(&self, model: &SnnModel, input: &Tensor<f32>) -> Result<RunReport> {
        let program = self.compile(model)?;
        let input_levels = model.encode_input(input)?;
        self.execute(model, &program, input_levels, ExecutionMode::CycleAccurate)
    }

    /// Runs one inference at transaction level: functional values plus the
    /// analytical timing model.
    ///
    /// # Errors
    ///
    /// Returns an error when the model cannot be mapped onto the
    /// configuration or the input shape does not match the network.
    pub fn run_fast(&self, model: &SnnModel, input: &Tensor<f32>) -> Result<RunReport> {
        let program = self.compile(model)?;
        let input_levels = model.encode_input(input)?;
        self.execute(model, &program, input_levels, ExecutionMode::Transaction)
    }

    /// Runs one inference per input, unit-exact, spreading the batch over
    /// worker threads.  The model is compiled once and shared; report `i`
    /// is bit-identical to `self.run(model, &inputs[i])`.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered (bad input shape, unmappable
    /// model); remaining inputs are still processed but their reports are
    /// discarded.
    pub fn run_batch(&self, model: &SnnModel, inputs: &[Tensor<f32>]) -> Result<Vec<RunReport>> {
        self.execute_batch(model, inputs, ExecutionMode::CycleAccurate)
    }

    /// Transaction-level variant of [`Accelerator::run_batch`].
    ///
    /// # Errors
    ///
    /// See [`Accelerator::run_batch`].
    pub fn run_fast_batch(
        &self,
        model: &SnnModel,
        inputs: &[Tensor<f32>],
    ) -> Result<Vec<RunReport>> {
        self.execute_batch(model, inputs, ExecutionMode::Transaction)
    }

    fn execute_batch(
        &self,
        model: &SnnModel,
        inputs: &[Tensor<f32>],
        mode: ExecutionMode,
    ) -> Result<Vec<RunReport>> {
        let program = self.compile(model)?;
        let threads = snn_parallel::default_threads().min(inputs.len().max(1));
        snn_parallel::par_map(inputs, threads, |_, input| {
            let levels = model.encode_input(input)?;
            self.execute(model, &program, levels, mode)
        })
        .into_iter()
        .collect()
    }

    fn execute(
        &self,
        model: &SnnModel,
        program: &Program,
        input_levels: Tensor<i64>,
        mode: ExecutionMode,
    ) -> Result<RunReport> {
        let max_level = model.max_level();
        let time_steps = model.time_steps();
        let conv_unit = ConvolutionUnit::new(self.config.conv_geometry);
        let pool_unit = PoolingUnit::new(self.config.pool_geometry);
        let linear_unit = LinearUnit::new(self.config.linear_lanes);

        // Activations live in the 2-D ping-pong buffer until the flatten
        // step, then in the 1-D buffer.  We model both with one runtime
        // buffer pair since only one is active at a time.
        let mut buffer = PingPongBuffer::new();
        buffer.load_input(input_levels);

        let mut layers = Vec::with_capacity(program.steps.len());
        let mut traffic = MemoryTraffic::default();

        for (step, layer) in program.steps.iter().zip(model.layers()) {
            let current = buffer.current()?.clone();
            let (next, work) = match (layer, mode) {
                (
                    SnnLayer::Conv {
                        weight_codes,
                        bias_acc,
                        stride,
                        padding,
                        requant,
                    },
                    ExecutionMode::CycleAccurate,
                ) => {
                    let result = conv_unit.run_layer(
                        &current,
                        weight_codes,
                        bias_acc,
                        time_steps,
                        *stride,
                        *padding,
                    )?;
                    let levels = apply_requant(&result.accumulators, *requant, max_level);
                    (levels, result.stats)
                }
                (
                    SnnLayer::Linear {
                        weight_codes,
                        bias_acc,
                        requant,
                    },
                    ExecutionMode::CycleAccurate,
                ) => {
                    let result =
                        linear_unit.run_layer(&current, weight_codes, bias_acc, time_steps)?;
                    let levels = apply_requant(&result.accumulators, *requant, max_level);
                    (levels, result.stats)
                }
                (SnnLayer::Pool { kind, window }, ExecutionMode::CycleAccurate) => {
                    let result = pool_unit.run_layer(&current, *kind, *window, time_steps)?;
                    (result.levels, result.stats)
                }
                (SnnLayer::Flatten, _) => {
                    let volume = current.len();
                    let flattened = current.reshape(vec![volume]).map_err(AccelError::Tensor)?;
                    let work = UnitStats {
                        cycles: volume as u64,
                        activation_reads: volume as u64,
                        output_writes: volume as u64,
                        ..UnitStats::default()
                    };
                    (flattened, work)
                }
                // Transaction-level execution: functional math, no unit-level
                // operation counting.
                (layer, ExecutionMode::Transaction) => {
                    let next = functional_layer(layer, &current, max_level)?;
                    (next, UnitStats::default())
                }
            };

            traffic.activation_reads += work.activation_reads;
            traffic.weight_reads += work.kernel_reads;
            traffic.activation_writes += work.output_writes;
            if self.config.memory == MemoryOption::Dram {
                traffic.dram_bits += step.weight_bits;
            }

            layers.push(LayerExecution {
                index: step.index,
                notation: step.notation.clone(),
                kind: step.kind,
                latency_cycles: step.timing.total_cycles(),
                work,
            });
            buffer.write_and_swap(next);
        }

        let logits = buffer.current()?.clone();
        let prediction = logits
            .iter()
            .enumerate()
            .fold(
                (0usize, i64::MIN),
                |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                },
            )
            .0;

        Ok(RunReport {
            prediction,
            logits: logits.into_vec(),
            layers,
            time_steps,
            traffic,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecutionMode {
    CycleAccurate,
    Transaction,
}

fn apply_requant(acc: &Tensor<i64>, requant: Option<f32>, max_level: i64) -> Tensor<i64> {
    match requant {
        Some(r) => acc.map(|&v| requantize(v, r, max_level)),
        None => acc.clone(),
    }
}

/// Functional (transaction-level) execution of one layer, shared with the
/// integer reference model.
fn functional_layer(
    layer: &SnnLayer,
    current: &Tensor<i64>,
    max_level: i64,
) -> Result<Tensor<i64>> {
    use snn_model::layer::PoolKind;
    use snn_tensor::ops;
    let next = match layer {
        SnnLayer::Conv {
            weight_codes,
            bias_acc,
            stride,
            padding,
            requant,
        } => {
            let acc = ops::conv2d(current, weight_codes, Some(bias_acc), *stride, *padding)
                .map_err(AccelError::Tensor)?;
            apply_requant(&acc, *requant, max_level)
        }
        SnnLayer::Linear {
            weight_codes,
            bias_acc,
            requant,
        } => {
            let acc =
                ops::linear(current, weight_codes, Some(bias_acc)).map_err(AccelError::Tensor)?;
            apply_requant(&acc, *requant, max_level)
        }
        SnnLayer::Pool { kind, window } => match kind {
            PoolKind::Average => ops::avg_pool2d(current, *window).map_err(AccelError::Tensor)?,
            PoolKind::Max => ops::max_pool2d(current, *window).map_err(AccelError::Tensor)?,
        },
        SnnLayer::Flatten => {
            let volume = current.len();
            current
                .clone()
                .reshape(vec![volume])
                .map_err(AccelError::Tensor)?
        }
    };
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
    use snn_model::params::Parameters;
    use snn_model::zoo;

    fn tiny_setup(time_steps: usize) -> (SnnModel, Vec<Tensor<f32>>) {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 5).unwrap();
        let inputs: Vec<Tensor<f32>> = (0..4)
            .map(|i| {
                let values: Vec<f32> = (0..144)
                    .map(|j| ((i * 31 + j * 7) % 100) as f32 / 100.0)
                    .collect();
                Tensor::from_vec(vec![1, 12, 12], values).unwrap()
            })
            .collect();
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let model = convert(
            &net,
            &params,
            &stats,
            ConversionConfig {
                weight_bits: 3,
                time_steps,
            },
        )
        .unwrap();
        (model, inputs)
    }

    #[test]
    fn cycle_accurate_run_matches_functional_model_bit_exactly() {
        let (model, inputs) = tiny_setup(4);
        let accel = Accelerator::new(AcceleratorConfig::default());
        for input in &inputs {
            let report = accel.run(&model, input).unwrap();
            let trace = model.forward(input).unwrap();
            assert_eq!(report.logits, trace.logits().as_slice());
            assert_eq!(report.prediction, trace.predicted_class());
        }
    }

    #[test]
    fn fast_and_cycle_accurate_runs_agree() {
        let (model, inputs) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        for input in &inputs {
            let detailed = accel.run(&model, input).unwrap();
            let fast = accel.run_fast(&model, input).unwrap();
            assert_eq!(detailed.logits, fast.logits);
            assert_eq!(detailed.total_cycles(), fast.total_cycles());
        }
    }

    #[test]
    fn latency_is_independent_of_the_input_data() {
        // The schedule is static: two different inputs must take exactly the
        // same number of cycles (only adder activity differs).
        let (model, inputs) = tiny_setup(4);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let a = accel.run(&model, &inputs[0]).unwrap();
        let b = accel.run(&model, &inputs[1]).unwrap();
        assert_eq!(a.total_cycles(), b.total_cycles());
    }

    #[test]
    fn more_conv_units_reduce_latency_but_not_results() {
        let (model, inputs) = tiny_setup(3);
        let one = Accelerator::new(AcceleratorConfig::lenet_experiment(1));
        let four = Accelerator::new(AcceleratorConfig::lenet_experiment(4));
        let r1 = one.run(&model, &inputs[0]).unwrap();
        let r4 = four.run(&model, &inputs[0]).unwrap();
        assert_eq!(r1.logits, r4.logits);
        assert!(r4.total_cycles() <= r1.total_cycles());
    }

    #[test]
    fn run_report_layers_match_network_depth() {
        let (model, inputs) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let report = accel.run(&model, &inputs[0]).unwrap();
        assert_eq!(report.layers.len(), model.spec().layers().len());
        assert!(report.total_work().adder_ops > 0);
        assert!(report.traffic.activation_reads > 0);
        assert_eq!(report.traffic.dram_bits, 0);
    }

    #[test]
    fn dram_configuration_reports_weight_traffic() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig {
            memory: MemoryOption::Dram,
            ..AcceleratorConfig::default()
        };
        let accel = Accelerator::new(config);
        let report = accel.run_fast(&model, &inputs[0]).unwrap();
        assert_eq!(
            report.traffic.dram_bits,
            model.spec().parameter_count() as u64 * 3
        );
    }

    #[test]
    fn design_report_is_consistent_with_run() {
        let (model, inputs) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let design = accel.design_report(&model).unwrap();
        let run = accel.run(&model, &inputs[0]).unwrap();
        assert_eq!(design.timing.total_cycles(), run.total_cycles());
        assert!(design.resources.luts > 0);
        assert!(design.power.total_w() > 0.0);
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let (model, _) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let bad = Tensor::filled(vec![1, 8, 8], 0.5f32);
        assert!(accel.run(&model, &bad).is_err());
    }

    #[test]
    fn batch_reports_match_individual_runs() {
        let (model, inputs) = tiny_setup(4);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let batch = accel.run_batch(&model, &inputs).unwrap();
        assert_eq!(batch.len(), inputs.len());
        for (report, input) in batch.iter().zip(&inputs) {
            let solo = accel.run(&model, input).unwrap();
            assert_eq!(report.logits, solo.logits);
            assert_eq!(report.prediction, solo.prediction);
            assert_eq!(report.total_cycles(), solo.total_cycles());
            assert_eq!(report.total_work(), solo.total_work());
        }
        let fast_batch = accel.run_fast_batch(&model, &inputs).unwrap();
        for (fast, detailed) in fast_batch.iter().zip(&batch) {
            assert_eq!(fast.logits, detailed.logits);
        }
    }

    #[test]
    fn empty_batch_is_fine_and_bad_inputs_error() {
        let (model, mut inputs) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        assert!(accel.run_batch(&model, &[]).unwrap().is_empty());
        inputs.push(Tensor::filled(vec![1, 8, 8], 0.5f32));
        assert!(accel.run_batch(&model, &inputs).is_err());
    }
}
