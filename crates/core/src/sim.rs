//! Top-level accelerator simulator.
//!
//! [`Accelerator`] owns a configuration, compiles converted SNN models onto
//! it and executes inferences through the pipelined execution engine in
//! [`crate::exec`].  Two levels of detail are provided:
//!
//! * [`Accelerator::run`] — **unit-exact**: every layer is executed on the
//!   bit-plane sparse processing-unit models
//!   ([`crate::conv::ConvolutionUnit`], [`crate::pool::PoolingUnit`],
//!   [`crate::linear::LinearUnit`]), activations move through the ping-pong
//!   buffers, and exact work/operation counts are reported.  The units
//!   traverse packed spike planes (word-level skip of silent regions,
//!   output channels spread over the shared worker pool) and *derive* their
//!   counters analytically from the static schedule plus plane popcounts;
//!   property tests pin both accumulators and counters to the retained
//!   counter-stepped models in [`crate::reference`].
//! * [`Accelerator::run_fast`] — **transaction-level**: activations are
//!   computed with the functional integer model of `snn-model` and only the
//!   analytical timing model is evaluated.  The results are bit-identical
//!   (asserted by tests); use this when unit-level operation counts are not
//!   needed.
//!
//! Depth no longer limits the unit-exact path: with
//! [`AcceleratorConfig::activation_buffer_bytes`] set, the compiler plans
//! row-band tiles ([`crate::memory::plan_network_tiles`]) and
//! [`Accelerator::run`] executes full-scale VGG-11 within a paper-scale
//! on-chip budget, tile by tile, with an unchanged (bit-identical) report.
//!
//! By default both paths execute **pipelined**: adjacent convolution →
//! pooling layers overlap through bounded stage queues, drawing stage
//! threads from the global [`snn_parallel::ThreadBudget`].  The strictly
//! sequential layer loop remains available as the verification oracle via
//! [`Accelerator::run_sequential`] / [`Accelerator::run_fast_sequential`]
//! (or `ExecOptions { pipeline: false, .. }`); property tests pin the
//! pipelined reports bit-identical to it.
//!
//! Batches of independent inputs can be dispatched over the worker pool
//! with [`Accelerator::run_batch`] / [`Accelerator::run_fast_batch`]; each
//! input produces exactly the report a solo [`Accelerator::run`] would.
//! For a continuously fed submission queue with micro-batching, see
//! [`crate::serve::StreamServer`].

use crate::compiler::{self, Program};
use crate::config::AcceleratorConfig;
use crate::cost;
use crate::exec::{self, ExecOptions, ExecutionMode};
use crate::report::{DesignReport, RunReport};
use crate::timing;
use crate::Result;
use snn_model::snn::SnnModel;
use snn_tensor::Tensor;

/// The accelerator: a configuration plus the machinery to compile and run
/// converted SNN models on it.
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerator {
    config: AcceleratorConfig,
    options: ExecOptions,
}

impl Accelerator {
    /// Creates an accelerator with the given configuration and default
    /// execution options (pipelining enabled).
    pub fn new(config: AcceleratorConfig) -> Self {
        Accelerator {
            config,
            options: ExecOptions::default(),
        }
    }

    /// Creates an accelerator with explicit execution options.
    pub fn with_options(config: AcceleratorConfig, options: ExecOptions) -> Self {
        Accelerator { config, options }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The execution options.
    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Compiles a model onto this accelerator.
    ///
    /// # Errors
    ///
    /// See [`compiler::compile`].
    pub fn compile(&self, model: &SnnModel) -> Result<Program> {
        compiler::compile(model, &self.config)
    }

    /// Produces the static design report (resources, power, predicted
    /// timing) for deploying `model` on this accelerator.
    ///
    /// # Errors
    ///
    /// Returns an error when the model cannot be mapped.
    pub fn design_report(&self, model: &SnnModel) -> Result<DesignReport> {
        let program = self.compile(model)?;
        let timing = timing::network_timing(&self.config, model.spec(), model.time_steps())?;
        Ok(DesignReport {
            resources: cost::estimate_resources(&self.config, model.spec(), model.time_steps()),
            power: cost::estimate_power(&self.config),
            activation_plan: program.activation_plan,
            weight_plan: program.weight_plan,
            timing,
        })
    }

    /// Runs one inference unit-exactly on the processing-unit models,
    /// pipelining adjacent stages where the thread budget allows.
    ///
    /// # Errors
    ///
    /// Returns an error when the model cannot be mapped onto the
    /// configuration or the input shape does not match the network.
    pub fn run(&self, model: &SnnModel, input: &Tensor<f32>) -> Result<RunReport> {
        let program = self.compile(model)?;
        self.execute_compiled(
            model,
            &program,
            input,
            ExecutionMode::CycleAccurate,
            self.options,
        )
    }

    /// Runs one inference at transaction level: functional values plus the
    /// analytical timing model.
    ///
    /// # Errors
    ///
    /// Returns an error when the model cannot be mapped onto the
    /// configuration or the input shape does not match the network.
    pub fn run_fast(&self, model: &SnnModel, input: &Tensor<f32>) -> Result<RunReport> {
        let program = self.compile(model)?;
        self.execute_compiled(
            model,
            &program,
            input,
            ExecutionMode::Transaction,
            self.options,
        )
    }

    /// The strictly sequential layer loop — the verification oracle the
    /// pipelined [`Accelerator::run`] is pinned bit-identical to.
    ///
    /// # Errors
    ///
    /// See [`Accelerator::run`].
    pub fn run_sequential(&self, model: &SnnModel, input: &Tensor<f32>) -> Result<RunReport> {
        let program = self.compile(model)?;
        let options = ExecOptions {
            pipeline: false,
            ..self.options
        };
        self.execute_compiled(
            model,
            &program,
            input,
            ExecutionMode::CycleAccurate,
            options,
        )
    }

    /// Sequential oracle for [`Accelerator::run_fast`].
    ///
    /// # Errors
    ///
    /// See [`Accelerator::run_fast`].
    pub fn run_fast_sequential(&self, model: &SnnModel, input: &Tensor<f32>) -> Result<RunReport> {
        let program = self.compile(model)?;
        let options = ExecOptions {
            pipeline: false,
            ..self.options
        };
        self.execute_compiled(model, &program, input, ExecutionMode::Transaction, options)
    }

    /// Runs one inference per input, unit-exact, spreading the batch over
    /// the shared worker pool.  The model is compiled once and shared;
    /// report `i` is bit-identical to `self.run(model, &inputs[i])`.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered (bad input shape, unmappable
    /// model); remaining inputs are still processed but their reports are
    /// discarded.
    pub fn run_batch(&self, model: &SnnModel, inputs: &[Tensor<f32>]) -> Result<Vec<RunReport>> {
        self.execute_batch(model, inputs, ExecutionMode::CycleAccurate)
    }

    /// Transaction-level variant of [`Accelerator::run_batch`].
    ///
    /// # Errors
    ///
    /// See [`Accelerator::run_batch`].
    pub fn run_fast_batch(
        &self,
        model: &SnnModel,
        inputs: &[Tensor<f32>],
    ) -> Result<Vec<RunReport>> {
        self.execute_batch(model, inputs, ExecutionMode::Transaction)
    }

    fn execute_batch(
        &self,
        model: &SnnModel,
        inputs: &[Tensor<f32>],
        mode: ExecutionMode,
    ) -> Result<Vec<RunReport>> {
        let program = self.compile(model)?;
        // Batch workers and per-layer channel parallelism all draw from the
        // same global budget — the pool bounds their combined concurrency,
        // so batch x channels no longer multiplies thread counts (pipeline
        // stage threads add at most budget - 1 more via leases).
        let threads = snn_parallel::budget().total().min(inputs.len().max(1));
        snn_parallel::par_map(inputs, threads, |_, input| {
            self.execute_compiled(model, &program, input, mode, self.options)
        })
        .into_iter()
        .collect()
    }

    /// Encodes one input and executes it over an already-compiled program
    /// (shared by the batch paths and [`crate::serve::StreamServer`]).
    pub(crate) fn execute_compiled(
        &self,
        model: &SnnModel,
        program: &Program,
        input: &Tensor<f32>,
        mode: ExecutionMode,
        options: ExecOptions,
    ) -> Result<RunReport> {
        let levels = model.encode_input(input)?;
        exec::execute(&self.config, model, program, levels, mode, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryOption;
    use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
    use snn_model::params::Parameters;
    use snn_model::zoo;

    fn tiny_setup(time_steps: usize) -> (SnnModel, Vec<Tensor<f32>>) {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 5).unwrap();
        let inputs: Vec<Tensor<f32>> = (0..4)
            .map(|i| {
                let values: Vec<f32> = (0..144)
                    .map(|j| ((i * 31 + j * 7) % 100) as f32 / 100.0)
                    .collect();
                Tensor::from_vec(vec![1, 12, 12], values).unwrap()
            })
            .collect();
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let model = convert(
            &net,
            &params,
            &stats,
            ConversionConfig {
                weight_bits: 3,
                time_steps,
            },
        )
        .unwrap();
        (model, inputs)
    }

    #[test]
    fn cycle_accurate_run_matches_functional_model_bit_exactly() {
        let (model, inputs) = tiny_setup(4);
        let accel = Accelerator::new(AcceleratorConfig::default());
        for input in &inputs {
            let report = accel.run(&model, input).unwrap();
            let trace = model.forward(input).unwrap();
            assert_eq!(report.logits, trace.logits().as_slice());
            assert_eq!(report.prediction, trace.predicted_class());
        }
    }

    #[test]
    fn fast_and_cycle_accurate_runs_agree() {
        let (model, inputs) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        for input in &inputs {
            let detailed = accel.run(&model, input).unwrap();
            let fast = accel.run_fast(&model, input).unwrap();
            assert_eq!(detailed.logits, fast.logits);
            assert_eq!(detailed.total_cycles(), fast.total_cycles());
        }
    }

    #[test]
    fn pipelined_and_sequential_paths_are_bit_identical() {
        // Force channel grouping so the fused conv -> pool pair actually
        // pipelines (one narrow unit -> several sequential groups).
        let (model, inputs) = tiny_setup(4);
        let config = AcceleratorConfig {
            conv_units: 1,
            ..AcceleratorConfig::default()
        };
        let accel = Accelerator::new(config);
        for input in &inputs {
            let pipelined = accel.run(&model, input).unwrap();
            let sequential = accel.run_sequential(&model, input).unwrap();
            assert_eq!(pipelined, sequential);
            let fast = accel.run_fast(&model, input).unwrap();
            let fast_sequential = accel.run_fast_sequential(&model, input).unwrap();
            assert_eq!(fast, fast_sequential);
        }
    }

    #[test]
    fn latency_is_independent_of_the_input_data() {
        // The schedule is static: two different inputs must take exactly the
        // same number of cycles (only adder activity differs).
        let (model, inputs) = tiny_setup(4);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let a = accel.run(&model, &inputs[0]).unwrap();
        let b = accel.run(&model, &inputs[1]).unwrap();
        assert_eq!(a.total_cycles(), b.total_cycles());
    }

    #[test]
    fn more_conv_units_reduce_latency_but_not_results() {
        let (model, inputs) = tiny_setup(3);
        let one = Accelerator::new(AcceleratorConfig::lenet_experiment(1));
        let four = Accelerator::new(AcceleratorConfig::lenet_experiment(4));
        let r1 = one.run(&model, &inputs[0]).unwrap();
        let r4 = four.run(&model, &inputs[0]).unwrap();
        assert_eq!(r1.logits, r4.logits);
        assert!(r4.total_cycles() <= r1.total_cycles());
    }

    #[test]
    fn run_report_layers_match_network_depth() {
        let (model, inputs) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let report = accel.run(&model, &inputs[0]).unwrap();
        assert_eq!(report.layers.len(), model.spec().layers().len());
        assert!(report.total_work().adder_ops > 0);
        assert!(report.traffic.activation_reads > 0);
        assert_eq!(report.traffic.dram_bits, 0);
    }

    #[test]
    fn report_records_thread_budget_and_utilisation() {
        let (model, inputs) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let report = accel.run(&model, &inputs[0]).unwrap();
        assert_eq!(report.thread_budget, snn_parallel::budget().total());
        assert!(!report.utilisation.is_empty());
        for unit in &report.utilisation {
            assert!(unit.busy_cycles <= unit.total_cycles);
            assert!(unit.utilisation() <= 1.0);
        }
    }

    #[test]
    fn dram_configuration_reports_weight_traffic() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig {
            memory: MemoryOption::Dram,
            ..AcceleratorConfig::default()
        };
        let accel = Accelerator::new(config);
        let report = accel.run_fast(&model, &inputs[0]).unwrap();
        assert_eq!(
            report.traffic.dram_bits,
            model.spec().parameter_count() as u64 * 3
        );
    }

    #[test]
    fn design_report_is_consistent_with_run() {
        let (model, inputs) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let design = accel.design_report(&model).unwrap();
        let run = accel.run(&model, &inputs[0]).unwrap();
        assert_eq!(design.timing.total_cycles(), run.total_cycles());
        assert!(design.resources.luts > 0);
        assert!(design.power.total_w() > 0.0);
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let (model, _) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let bad = Tensor::filled(vec![1, 8, 8], 0.5f32);
        assert!(accel.run(&model, &bad).is_err());
    }

    #[test]
    fn batch_reports_match_individual_runs() {
        let (model, inputs) = tiny_setup(4);
        let accel = Accelerator::new(AcceleratorConfig::default());
        let batch = accel.run_batch(&model, &inputs).unwrap();
        assert_eq!(batch.len(), inputs.len());
        for (report, input) in batch.iter().zip(&inputs) {
            let solo = accel.run(&model, input).unwrap();
            assert_eq!(report, &solo);
        }
        let fast_batch = accel.run_fast_batch(&model, &inputs).unwrap();
        for (fast, detailed) in fast_batch.iter().zip(&batch) {
            assert_eq!(fast.logits, detailed.logits);
        }
    }

    #[test]
    fn empty_batch_is_fine_and_bad_inputs_error() {
        let (model, mut inputs) = tiny_setup(3);
        let accel = Accelerator::new(AcceleratorConfig::default());
        assert!(accel.run_batch(&model, &[]).unwrap().is_empty());
        inputs.push(Tensor::filled(vec![1, 8, 8], 0.5f32));
        assert!(accel.run_batch(&model, &inputs).is_err());
    }
}
