//! Design-space exploration (DSE).
//!
//! Table II of the paper is a one-dimensional sweep (the number of
//! convolution units).  Choosing "four units, because they yielded one of
//! the best latency-power-resource ratios" (Section IV-A) is a design-space
//! decision; this module automates it: it enumerates configurations over
//! the number of convolution units, clock frequency and linear-unit lanes,
//! evaluates latency, power, energy and resources for a given network, and
//! extracts the Pareto-optimal points.

use crate::config::AcceleratorConfig;
use crate::cost;
use crate::timing::network_timing;
use crate::Result;
use serde::{Deserialize, Serialize};
use snn_model::NetworkSpec;

/// The axes of the exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpace {
    /// Candidate convolution-unit counts.
    pub conv_units: Vec<usize>,
    /// Candidate clock frequencies in MHz.
    pub clock_mhz: Vec<f64>,
    /// Candidate linear-unit lane counts.
    pub linear_lanes: Vec<usize>,
}

impl Default for SweepSpace {
    fn default() -> Self {
        SweepSpace {
            conv_units: vec![1, 2, 4, 8],
            clock_mhz: vec![100.0, 200.0],
            linear_lanes: vec![8, 32],
        }
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The configuration evaluated.
    pub config: AcceleratorConfig,
    /// Predicted latency in microseconds.
    pub latency_us: f64,
    /// Estimated total power in watts.
    pub power_w: f64,
    /// Energy per inference in microjoules.
    pub energy_uj: f64,
    /// Estimated lookup tables.
    pub luts: u64,
    /// Estimated flip-flops.
    pub flip_flops: u64,
}

impl DesignPoint {
    /// `true` when `self` is at least as good as `other` on latency, power
    /// and LUTs, and strictly better on at least one of them.
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let no_worse = self.latency_us <= other.latency_us
            && self.power_w <= other.power_w
            && self.luts <= other.luts;
        let strictly_better = self.latency_us < other.latency_us
            || self.power_w < other.power_w
            || self.luts < other.luts;
        no_worse && strictly_better
    }

    /// The latency-power-resource figure of merit the paper informally uses
    /// to pick four convolution units: the product of the three costs
    /// (lower is better).
    pub fn figure_of_merit(&self) -> f64 {
        self.latency_us * self.power_w * self.luts as f64
    }
}

/// Result of a design-space sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Every evaluated point, in enumeration order.
    pub points: Vec<DesignPoint>,
}

impl SweepResult {
    /// Indices of the Pareto-optimal points (latency, power, LUTs).
    pub fn pareto_indices(&self) -> Vec<usize> {
        (0..self.points.len())
            .filter(|&i| {
                !self
                    .points
                    .iter()
                    .enumerate()
                    .any(|(j, other)| j != i && other.dominates(&self.points[i]))
            })
            .collect()
    }

    /// The point with the best (lowest) latency-power-resource product.
    pub fn best_by_figure_of_merit(&self) -> Option<&DesignPoint> {
        self.points.iter().min_by(|a, b| {
            a.figure_of_merit()
                .partial_cmp(&b.figure_of_merit())
                .expect("figures of merit are finite")
        })
    }
}

/// Evaluates a single configuration on a network.
///
/// # Errors
///
/// Returns an error when the network cannot be mapped onto the
/// configuration.
pub fn evaluate_point(
    config: &AcceleratorConfig,
    net: &NetworkSpec,
    time_steps: usize,
) -> Result<DesignPoint> {
    let timing = network_timing(config, net, time_steps)?;
    let latency_us = timing.latency_us(config);
    let power = cost::estimate_power(config);
    let resources = cost::estimate_resources(config, net, time_steps);
    Ok(DesignPoint {
        config: *config,
        latency_us,
        power_w: power.total_w(),
        energy_uj: cost::inference_energy_uj(&power, latency_us),
        luts: resources.luts,
        flip_flops: resources.flip_flops,
    })
}

/// Sweeps the design space for a network, starting from a base
/// configuration whose remaining fields (geometry, memory option, weight
/// bits) are kept fixed.
///
/// # Errors
///
/// Returns an error when the network cannot be mapped onto one of the
/// configurations.
pub fn sweep(
    base: &AcceleratorConfig,
    space: &SweepSpace,
    net: &NetworkSpec,
    time_steps: usize,
) -> Result<SweepResult> {
    let mut points = Vec::new();
    for &conv_units in &space.conv_units {
        for &clock_mhz in &space.clock_mhz {
            for &linear_lanes in &space.linear_lanes {
                let config = AcceleratorConfig {
                    conv_units,
                    clock_mhz,
                    linear_lanes,
                    ..*base
                };
                points.push(evaluate_point(&config, net, time_steps)?);
            }
        }
    }
    Ok(SweepResult { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::zoo;

    fn lenet_sweep() -> SweepResult {
        sweep(
            &AcceleratorConfig::default(),
            &SweepSpace::default(),
            &zoo::lenet5(),
            3,
        )
        .unwrap()
    }

    #[test]
    fn sweep_enumerates_the_full_cross_product() {
        let result = lenet_sweep();
        assert_eq!(result.points.len(), 4 * 2 * 2);
    }

    #[test]
    fn pareto_front_is_non_empty_and_undominated() {
        let result = lenet_sweep();
        let front = result.pareto_indices();
        assert!(!front.is_empty());
        for &i in &front {
            for (j, other) in result.points.iter().enumerate() {
                if i != j {
                    assert!(
                        !other.dominates(&result.points[i]),
                        "pareto point {i} is dominated by {j}"
                    );
                }
            }
        }
        // At least one non-Pareto point exists in this space (e.g. 1 unit at
        // 100 MHz with 8 lanes is dominated by richer configurations? not
        // necessarily on power) — so only check the front is a subset.
        assert!(front.len() <= result.points.len());
    }

    #[test]
    fn faster_clock_reduces_latency_but_raises_power() {
        let result = lenet_sweep();
        let slow = result
            .points
            .iter()
            .find(|p| {
                p.config.conv_units == 4
                    && p.config.clock_mhz == 100.0
                    && p.config.linear_lanes == 32
            })
            .unwrap();
        let fast = result
            .points
            .iter()
            .find(|p| {
                p.config.conv_units == 4
                    && p.config.clock_mhz == 200.0
                    && p.config.linear_lanes == 32
            })
            .unwrap();
        assert!(fast.latency_us < slow.latency_us);
        assert!(fast.power_w > slow.power_w);
    }

    #[test]
    fn figure_of_merit_prefers_mid_sized_designs() {
        // The paper picks 4 units as "one of the best latency-power-resource
        // ratios"; the figure of merit should not be optimised by the
        // largest design.
        let result = lenet_sweep();
        let best = result.best_by_figure_of_merit().unwrap();
        assert!(best.config.conv_units >= 2);
        let worst_fom = result
            .points
            .iter()
            .map(DesignPoint::figure_of_merit)
            .fold(f64::MIN, f64::max);
        assert!(best.figure_of_merit() < worst_fom);
    }

    #[test]
    fn domination_is_irreflexive_and_asymmetric() {
        let result = lenet_sweep();
        let a = &result.points[0];
        let b = &result.points[1];
        assert!(!a.dominates(a));
        if a.dominates(b) {
            assert!(!b.dominates(a));
        }
    }

    #[test]
    fn evaluate_point_matches_sweep_entry() {
        let net = zoo::lenet5();
        let config = AcceleratorConfig::lenet_experiment(4);
        let point = evaluate_point(&config, &net, 3).unwrap();
        let result = lenet_sweep();
        let same = result
            .points
            .iter()
            .find(|p| {
                p.config.conv_units == 4
                    && p.config.clock_mhz == 100.0
                    && p.config.linear_lanes == config.linear_lanes
            })
            .unwrap();
        assert_eq!(point.luts, same.luts);
        assert!((point.latency_us - same.latency_us).abs() < 1e-9);
    }
}
