//! Lowering of a converted SNN model onto the accelerator.
//!
//! The compiler checks that every layer of the network can be mapped onto
//! the configured processing units (kernel rows fit the adder array,
//! supported layer types only), decides how the output channels of each
//! convolution layer are divided across the convolution units, and
//! pre-computes the per-layer timing.  The result is a lightweight,
//! serializable [`Program`]; the actual weights stay in the
//! [`snn_model::snn::SnnModel`] and are read by the simulator at run time —
//! exactly like the hardware, where the controller only holds descriptors
//! and the parameters stay in the weight memory.

use crate::config::{AcceleratorConfig, MemoryOption};
use crate::memory::{self, ActivationBufferPlan, DramModel, LayerTiling, WeightMemoryPlan};
use crate::timing::{self, LayerTiming, StageKind};
use crate::{AccelError, Result};
use serde::{Deserialize, Serialize};
use snn_model::layer::PoolKind;
use snn_model::snn::SnnModel;
use snn_model::LayerSpec;

/// Scheduling descriptor of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProgram {
    /// Layer index in the network.
    pub index: usize,
    /// Human-readable layer notation (`6C5`, `P2`, ...).
    pub notation: String,
    /// Which stage executes the layer.
    pub kind: StageKind,
    /// Input activation shape.
    pub in_shape: Vec<usize>,
    /// Output activation shape.
    pub out_shape: Vec<usize>,
    /// Convolution layers: how many output channels share one unit.
    pub channels_per_unit: usize,
    /// Convolution layers: number of sequential output-channel groups.
    pub channel_groups: usize,
    /// Parameter storage for this layer in bits.
    pub weight_bits: u64,
    /// Predicted timing.
    pub timing: LayerTiming,
    /// Pooling layers: the pooling flavour.
    pub pool_kind: Option<PoolKind>,
    /// How the layer's activations are tiled to fit the configured
    /// [`AcceleratorConfig::activation_buffer_bytes`] budget; `None` when
    /// the layer fits untiled (always `None` without a budget).
    pub tiling: Option<LayerTiling>,
}

/// A compiled schedule for one network on one accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Per-layer schedule, in execution order.
    pub steps: Vec<LayerProgram>,
    /// Activation-buffer sizing.
    pub activation_plan: ActivationBufferPlan,
    /// Weight-memory sizing.
    pub weight_plan: WeightMemoryPlan,
    /// Spike-train length.
    pub time_steps: usize,
}

impl Program {
    /// Total predicted cycles for one inference.
    pub fn total_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.timing.total_cycles()).sum()
    }

    /// Total parameter bits streamed from DRAM per inference (zero for
    /// on-chip weights).
    pub fn dram_bits_per_inference(&self) -> u64 {
        if self.weight_plan.option == MemoryOption::Dram {
            self.steps.iter().map(|s| s.weight_bits).sum()
        } else {
            0
        }
    }
}

/// Compiles a converted SNN model onto an accelerator configuration.
///
/// # Errors
///
/// Returns [`AccelError::InvalidConfig`] for invalid configurations and
/// [`AccelError::UnsupportedLayer`] when a layer cannot be mapped (e.g. a
/// kernel with more rows than the adder array).
pub fn compile(model: &SnnModel, config: &AcceleratorConfig) -> Result<Program> {
    config.validate()?;
    let net = model.spec();
    let time_steps = model.time_steps();
    let dram = DramModel::from_config(config);

    let mut steps = Vec::with_capacity(net.layers().len());
    for (i, layer) in net.layers().iter().enumerate() {
        let in_shape = net.layer_input_shape(i).to_vec();
        let out_shape = net.layer_output_shape(i).to_vec();
        let weight_bits = layer.parameter_count() as u64 * config.weight_bits as u64;
        let weight_fetch_cycles = match config.memory {
            MemoryOption::OnChip => 0,
            MemoryOption::Dram => dram.transfer_cycles(weight_bits),
        };
        let (kind, channels_per_unit, channel_groups, compute_cycles, pool_kind) = match *layer {
            LayerSpec::Conv2d {
                in_channels,
                out_channels,
                kernel,
                ..
            } => {
                if kernel > config.conv_geometry.rows {
                    return Err(AccelError::UnsupportedLayer {
                        layer: i,
                        context: format!(
                            "kernel of {kernel} rows exceeds the {}-row adder array",
                            config.conv_geometry.rows
                        ),
                    });
                }
                let per_unit = timing::channels_per_conv_unit(config, out_shape[2]);
                let parallel = (config.conv_units * per_unit).max(1);
                let groups = out_channels.div_ceil(parallel);
                let cycles = timing::conv_layer_latency(
                    config,
                    in_channels,
                    out_channels,
                    out_shape[1],
                    out_shape[2],
                    kernel,
                    time_steps,
                );
                (StageKind::Convolution, per_unit, groups, cycles, None)
            }
            LayerSpec::Pool { kind, window } => (
                StageKind::Pooling,
                1,
                1,
                timing::pool_layer_latency(
                    config,
                    out_shape[0],
                    out_shape[1],
                    out_shape[2],
                    window,
                    time_steps,
                ),
                Some(kind),
            ),
            LayerSpec::Flatten => (
                StageKind::Flatten,
                1,
                1,
                timing::flatten_latency(in_shape.iter().product()),
                None,
            ),
            LayerSpec::Linear {
                in_features,
                out_features,
            } => (
                StageKind::Linear,
                config.linear_lanes,
                out_features.div_ceil(config.linear_lanes),
                timing::linear_layer_latency(config, in_features, out_features, time_steps),
                None,
            ),
        };
        steps.push(LayerProgram {
            index: i,
            notation: layer.notation(),
            kind,
            in_shape,
            out_shape,
            channels_per_unit,
            channel_groups,
            weight_bits,
            timing: LayerTiming {
                layer: i,
                kind,
                compute_cycles,
                weight_fetch_cycles,
            },
            pool_kind,
            tiling: None,
        });
    }

    // With an activation-buffer budget configured, plan row-band tiles for
    // every layer whose working set exceeds it; compilation fails here —
    // not at run time — when even a single-row tile cannot fit.
    if let Some(budget) = config.activation_buffer_bytes {
        let plan = memory::plan_network_tiles(net, time_steps, budget, config.linear_lanes)?;
        for (step, tiling) in steps.iter_mut().zip(plan.layers) {
            step.tiling = tiling;
        }
    }

    Ok(Program {
        steps,
        activation_plan: ActivationBufferPlan::for_network(net, time_steps),
        weight_plan: WeightMemoryPlan::for_network(net, config.weight_bits, config.memory),
        time_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
    use snn_model::params::Parameters;
    use snn_model::zoo;
    use snn_tensor::Tensor;

    fn tiny_model(time_steps: usize) -> SnnModel {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 1).unwrap();
        let input = Tensor::filled(vec![1, 12, 12], 0.5f32);
        let stats = CalibrationStats::collect(&net, &params, [&input]).unwrap();
        convert(
            &net,
            &params,
            &stats,
            ConversionConfig {
                weight_bits: 3,
                time_steps,
            },
        )
        .unwrap()
    }

    #[test]
    fn program_has_one_step_per_layer() {
        let model = tiny_model(4);
        let program = compile(&model, &AcceleratorConfig::default()).unwrap();
        assert_eq!(program.steps.len(), model.spec().layers().len());
        assert_eq!(program.time_steps, 4);
        assert!(program.total_cycles() > 0);
    }

    #[test]
    fn conv_layers_record_unit_sharing() {
        let model = tiny_model(3);
        let program = compile(&model, &AcceleratorConfig::default()).unwrap();
        let conv_step = &program.steps[0];
        assert_eq!(conv_step.kind, StageKind::Convolution);
        // Tiny CNN conv output is 10 columns wide; X = 30 packs 3 channels.
        assert_eq!(conv_step.channels_per_unit, 3);
        assert!(conv_step.channel_groups >= 1);
    }

    #[test]
    fn on_chip_memory_has_no_dram_traffic() {
        let model = tiny_model(3);
        let program = compile(&model, &AcceleratorConfig::default()).unwrap();
        assert_eq!(program.dram_bits_per_inference(), 0);
        assert!(program
            .steps
            .iter()
            .all(|s| s.timing.weight_fetch_cycles == 0));
    }

    #[test]
    fn dram_memory_streams_every_parameter_bit() {
        let model = tiny_model(3);
        let config = AcceleratorConfig {
            memory: MemoryOption::Dram,
            ..AcceleratorConfig::default()
        };
        let program = compile(&model, &config).unwrap();
        let expected_bits = model.spec().parameter_count() as u64 * 3;
        assert_eq!(program.dram_bits_per_inference(), expected_bits);
    }

    #[test]
    fn unsupported_kernel_is_rejected() {
        let model = tiny_model(3);
        let mut config = AcceleratorConfig::default();
        config.conv_geometry.rows = 2; // tiny CNN uses a 3x3 kernel
        assert!(matches!(
            compile(&model, &config),
            Err(AccelError::UnsupportedLayer { .. })
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let model = tiny_model(3);
        let config = AcceleratorConfig {
            conv_units: 0,
            ..AcceleratorConfig::default()
        };
        assert!(matches!(
            compile(&model, &config),
            Err(AccelError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn program_total_matches_timing_module() {
        let model = tiny_model(5);
        let config = AcceleratorConfig::lenet_experiment(2);
        let program = compile(&model, &config).unwrap();
        let report = timing::network_timing(&config, model.spec(), 5).unwrap();
        assert_eq!(program.total_cycles(), report.total_cycles());
    }
}
