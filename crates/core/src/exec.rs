//! Pipelined execution engine: the layer loop of the simulator, as a stage
//! graph.
//!
//! The paper's hardware does not run layers strictly back-to-back: while
//! the convolution units compute one group of output channels, the pooling
//! unit already consumes the groups that finished earlier.  This module
//! reproduces that execution model in software:
//!
//! * The compiled [`Program`] is walked as a **stage graph**.  A
//!   convolution layer immediately followed by a pooling layer becomes a
//!   *fused pair*: a producer stage computes the convolution one channel
//!   group at a time (the same `units × channels_per_unit` groups the
//!   hardware schedule uses, straggler included) and hands each finished
//!   group to the pooling stage through a **bounded SPSC queue**, so
//!   adjacent layers overlap on the host exactly where they overlap on
//!   chip.  All other layers run as single stages.
//! * The producer stage runs on a scoped thread reserved through
//!   [`snn_parallel::ThreadBudget::try_lease_stage_threads`]; when the
//!   budget is exhausted the pair silently degrades to the sequential
//!   path.  Stage threads block on the queue, never on the worker pool, so
//!   they cannot starve the pool's compute tasks.
//! * **Determinism contract:** every accumulator the engine produces is a
//!   sum of the same integer terms in a per-output-channel order, and
//!   every [`UnitStats`] counter is linear in the output channels, so
//!   per-group execution sums to exactly the whole-layer values.  The
//!   sequential path (`ExecOptions { pipeline: false, .. }`) is the oracle
//!   and property tests pin the pipelined accumulators, stats and full
//!   [`RunReport`]s bit-identical to it.
//!
//! Per-unit **busy/idle cycle counters** are derived from the static
//! schedule ([`utilisation_from_program`], straggler-aware via
//! [`crate::timing::ConvGroupPlan`]) and feed the
//! [`RunReport::utilisation`] field and the serving benchmarks.
//!
//! # Tiled activation buffers
//!
//! When the compiled program carries a tile plan
//! ([`crate::memory::plan_network_tiles`], driven by
//! [`AcceleratorConfig::activation_buffer_bytes`]), layers whose working
//! set exceeds the budget execute **tile by tile**: convolution and
//! pooling stages gather one halo-extended row band at a time (the
//! bit-plane packing happens per band inside the units), fully-connected
//! stages stage lane-aligned output chunks, and a fused conv → pool pair
//! streams `(row band × channel group)` items — not just channel groups —
//! through its bounded queue, so the conv output of a VGG-scale layer is
//! never resident as a whole on the modelled chip.  Every per-tile counter
//! sums to exactly the untiled layer's counters, so the tiled
//! [`RunReport`] stays bit-identical to the untiled sequential oracle.

use crate::compiler::{LayerProgram, Program};
use crate::config::{AcceleratorConfig, MemoryOption};
use crate::conv::ConvolutionUnit;
use crate::linear::LinearUnit;
use crate::memory::{LayerTiling, MemoryTraffic, PingPongBuffer, RowBand};
use crate::pool::PoolingUnit;
use crate::report::{LayerExecution, RunReport, UnitUtilisation};
use crate::timing::{ConvGroupPlan, StageKind};
use crate::units::UnitStats;
use crate::{AccelError, Result};
use snn_model::layer::PoolKind;
use snn_model::snn::{requantize, SnnLayer, SnnModel};
use snn_tensor::{ops, Tensor};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::thread;

/// At which level of detail an inference executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Unit-exact: every layer runs on the bit-plane sparse
    /// processing-unit models with exact work/operation counts.
    CycleAccurate,
    /// Transaction-level: functional integer math plus the analytical
    /// timing model only.
    Transaction,
}

/// Options steering the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Overlap adjacent convolution → pooling stages through a bounded
    /// queue (`false` selects the sequential oracle path).
    pub pipeline: bool,
    /// Depth of the bounded SPSC queue between fused stages, in channel
    /// groups (clamped to at least 1).
    pub queue_capacity: usize,
    /// Per-call ceiling on the threads this execution may occupy: `0`
    /// (the default) means "whatever the global
    /// [`snn_parallel::ThreadBudget`] allows".  A replicated server sets
    /// this to each replica's share of the budget so N replicas cannot
    /// collectively oversubscribe the host; a cap of `1` additionally
    /// disables the fused-pair stage thread (the pipeline falls back to
    /// the bit-identical sequential path, since overlapping stages on a
    /// single allotted thread buys nothing).  Results are bit-identical
    /// for every value — the cap steers scheduling, never math.
    pub thread_cap: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            pipeline: true,
            queue_capacity: 2,
            thread_cap: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded SPSC queue
// ---------------------------------------------------------------------------

struct QueueState<T> {
    items: VecDeque<T>,
    /// Producer finished: `pop` drains the backlog then returns `None`.
    finished: bool,
    /// Consumer bailed out: `push` discards and returns `false`.
    closed: bool,
}

/// A bounded single-producer single-consumer queue: the conveyor between
/// two pipeline stages.  `push` blocks while the queue is full — that is
/// the backpressure that keeps a fast producer at most `capacity` channel
/// groups ahead of the consumer, like the ping-pong buffer does on chip.
pub(crate) struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    space: Condvar,
    item: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                finished: false,
                closed: false,
            }),
            space: Condvar::new(),
            item: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until there is space, then enqueues `value`.  Returns `false`
    /// when the consumer closed the queue (the value is dropped).
    pub(crate) fn push(&self, value: T) -> bool {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return false;
            }
            if state.items.len() < self.capacity {
                state.items.push_back(value);
                self.item.notify_one();
                return true;
            }
            state = self.space.wait(state).expect("queue wait");
        }
    }

    /// Blocks until an item arrives; returns `None` once the producer
    /// finished and the backlog is drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(value) = state.items.pop_front() {
                self.space.notify_one();
                return Some(value);
            }
            if state.finished {
                return None;
            }
            state = self.item.wait(state).expect("queue wait");
        }
    }

    /// Producer side: no more items will be pushed.
    pub(crate) fn finish(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.finished = true;
        self.item.notify_all();
    }

    /// Consumer side: stop accepting items (unblocks a waiting producer).
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        state.items.clear();
        self.space.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------------

/// The instantiated processing units of one accelerator.
struct Units {
    conv: ConvolutionUnit,
    pool: PoolingUnit,
    linear: LinearUnit,
}

impl Units {
    fn from_config(config: &AcceleratorConfig) -> Self {
        Units {
            conv: ConvolutionUnit::with_options(
                config.conv_geometry,
                config.dense_gather_threshold,
                config.product_sparsity,
            ),
            pool: PoolingUnit::new(config.pool_geometry),
            linear: LinearUnit::with_threshold(config.linear_lanes, config.dense_gather_threshold),
        }
    }
}

/// Executes one inference over a compiled program.
///
/// This is the layer loop previously embedded in `sim.rs`, generalised to
/// the stage graph described in the module docs.  With
/// `options.pipeline == false` it reproduces the original strictly
/// sequential execution (the oracle); with pipelining enabled the result
/// is bit-identical by construction and pinned by property tests.
pub(crate) fn execute(
    config: &AcceleratorConfig,
    model: &SnnModel,
    program: &Program,
    input_levels: Tensor<i64>,
    mode: ExecutionMode,
    options: ExecOptions,
) -> Result<RunReport> {
    let max_level = model.max_level();
    let time_steps = model.time_steps();
    let units = Units::from_config(config);

    // Activations live in the 2-D ping-pong buffer until the flatten step,
    // then in the 1-D buffer.  We model both with one runtime buffer pair
    // since only one is active at a time.  A fused conv → pool pair keeps
    // its intermediate channel groups in the stage queue instead of the
    // buffer, exactly like the hardware streams them between units.
    let mut buffer = PingPongBuffer::new();
    buffer.load_input(input_levels);

    let mut layers = Vec::with_capacity(program.steps.len());
    let mut traffic = MemoryTraffic::default();
    let model_layers = model.layers();

    let mut index = 0;
    while index < program.steps.len() {
        let current = buffer.current()?.clone();
        let step = &program.steps[index];

        // Fused stage pair: convolution feeding pooling through the queue.
        // Overlap needs more than one streamed item (channel groups and/or
        // row bands) and a stage thread from the shared budget; otherwise
        // fall back to the sequential path, which is bit-identical.
        if options.pipeline
            && options.thread_cap != 1
            && index + 1 < program.steps.len()
            && step.kind == StageKind::Convolution
            && program.steps[index + 1].kind == StageKind::Pooling
        {
            let window = match &model_layers[index + 1] {
                SnnLayer::Pool { window, .. } => *window,
                _ => 1,
            };
            let pool_tiled = program.steps[index + 1].tiling.is_some();
            if let Some(bands) = fused_band_list(step, window, pool_tiled, mode) {
                if step.channel_groups > 1 || bands.len() > 1 {
                    if let Some(lease) = snn_parallel::budget().try_lease_stage_threads(1) {
                        let pool_step = &program.steps[index + 1];
                        // Stream exactly the hardware's channel groups: one
                        // pass carries `units x channels_per_unit` output
                        // channels, the final (straggler) group whatever
                        // remains — per row band when the layer is tiled.
                        let group_size = (step.channels_per_unit * config.conv_units).max(1);
                        let (pooled, conv_work, pool_work) = run_fused_conv_pool(
                            &units,
                            &current,
                            &model_layers[index],
                            &model_layers[index + 1],
                            pool_step,
                            &bands,
                            group_size,
                            time_steps,
                            max_level,
                            mode,
                            options.queue_capacity,
                        )?;
                        drop(lease);
                        record_layer(&mut layers, &mut traffic, config, step, conv_work);
                        record_layer(&mut layers, &mut traffic, config, pool_step, pool_work);
                        buffer.write_and_swap(pooled);
                        index += 2;
                        continue;
                    }
                }
            }
        }

        // Single stage: the sequential oracle step.
        let (next, work) = run_single_layer(
            &units,
            &model_layers[index],
            step,
            &current,
            time_steps,
            max_level,
            mode,
        )?;
        record_layer(&mut layers, &mut traffic, config, step, work);
        buffer.write_and_swap(next);
        index += 1;
    }

    let logits = buffer.current()?.clone();
    let prediction = logits
        .iter()
        .enumerate()
        .fold(
            (0usize, i64::MIN),
            |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            },
        )
        .0;

    Ok(RunReport {
        prediction,
        logits: logits.into_vec(),
        layers,
        time_steps,
        traffic,
        thread_budget: snn_parallel::budget().total(),
        utilisation: utilisation_from_program(config, program),
    })
}

fn record_layer(
    layers: &mut Vec<LayerExecution>,
    traffic: &mut MemoryTraffic,
    config: &AcceleratorConfig,
    step: &LayerProgram,
    work: UnitStats,
) {
    traffic.activation_reads += work.activation_reads;
    traffic.weight_reads += work.kernel_reads;
    traffic.activation_writes += work.output_writes;
    if config.memory == MemoryOption::Dram {
        traffic.dram_bits += step.weight_bits;
    }
    layers.push(LayerExecution {
        index: step.index,
        notation: step.notation.clone(),
        kind: step.kind,
        latency_cycles: step.timing.total_cycles(),
        work,
    });
}

/// Copies the input rows `lo..hi` of a `[C, H, W]` feature map into a
/// fresh `[C, hi - lo, W]` band tensor — the modelled tile load into the
/// activation buffer's read half.
fn copy_row_band(levels: &Tensor<i64>, lo: usize, hi: usize) -> Result<Tensor<i64>> {
    let dims = levels.shape().dims();
    if dims.len() != 3 || hi > dims[1] || lo >= hi {
        return Err(AccelError::UnsupportedLayer {
            layer: 0,
            context: format!("row band {lo}..{hi} outside a {dims:?} feature map"),
        });
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let src = levels.as_slice();
    let mut data = Vec::with_capacity(c * (hi - lo) * w);
    for ch in 0..c {
        data.extend_from_slice(&src[ch * h * w + lo * w..ch * h * w + hi * w]);
    }
    Tensor::from_vec(vec![c, hi - lo, w], data).map_err(AccelError::Tensor)
}

/// Writes a `[C, bh, W]` band of output rows into a `[C, H, W]` map at row
/// offset `out_lo` — the modelled drain of the buffer's write half.
fn write_row_band(dst: &mut Tensor<i64>, band: &Tensor<i64>, out_lo: usize) {
    let dims = dst.shape().dims().to_vec();
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let bh = band.shape().dims()[1];
    let src = band.as_slice();
    let out = dst.as_mut_slice();
    for ch in 0..c {
        out[ch * h * w + out_lo * w..ch * h * w + (out_lo + bh) * w]
            .copy_from_slice(&src[ch * bh * w..(ch + 1) * bh * w]);
    }
}

/// Executes one layer as a single stage (the original sequential step),
/// tile by tile when the compiled step carries a tiling.
fn run_single_layer(
    units: &Units,
    layer: &SnnLayer,
    step: &LayerProgram,
    current: &Tensor<i64>,
    time_steps: usize,
    max_level: i64,
    mode: ExecutionMode,
) -> Result<(Tensor<i64>, UnitStats)> {
    match (layer, mode) {
        (
            SnnLayer::Conv {
                weight_codes,
                bias_acc,
                stride,
                padding,
                requant,
            },
            ExecutionMode::CycleAccurate,
        ) => {
            if let Some(LayerTiling::RowBands { bands, .. }) = &step.tiling {
                let mut levels = Tensor::filled(step.out_shape.clone(), 0i64);
                let mut work = UnitStats::default();
                for band in bands {
                    let band_input = copy_row_band(current, band.in_lo, band.in_hi)?;
                    let result = units.conv.run_layer_band(
                        &band_input,
                        weight_codes,
                        bias_acc,
                        time_steps,
                        *stride,
                        *padding,
                        band,
                    )?;
                    work += result.stats;
                    write_row_band(
                        &mut levels,
                        &apply_requant(&result.accumulators, *requant, max_level),
                        band.out_lo,
                    );
                }
                return Ok((levels, work));
            }
            let result = units.conv.run_layer(
                current,
                weight_codes,
                bias_acc,
                time_steps,
                *stride,
                *padding,
            )?;
            let levels = apply_requant(&result.accumulators, *requant, max_level);
            Ok((levels, result.stats))
        }
        (
            SnnLayer::Linear {
                weight_codes,
                bias_acc,
                requant,
            },
            ExecutionMode::CycleAccurate,
        ) => {
            let result = if let Some(LayerTiling::OutputChunks { chunk }) = &step.tiling {
                units.linear.run_layer_chunked(
                    current,
                    weight_codes,
                    bias_acc,
                    time_steps,
                    *chunk,
                )?
            } else {
                units
                    .linear
                    .run_layer(current, weight_codes, bias_acc, time_steps)?
            };
            let levels = apply_requant(&result.accumulators, *requant, max_level);
            Ok((levels, result.stats))
        }
        (SnnLayer::Pool { kind, window }, ExecutionMode::CycleAccurate) => {
            if let Some(LayerTiling::RowBands { bands, .. }) = &step.tiling {
                let mut levels = Tensor::filled(step.out_shape.clone(), 0i64);
                let mut work = UnitStats::default();
                for band in bands {
                    let band_input = copy_row_band(current, band.in_lo, band.in_hi)?;
                    let result =
                        units
                            .pool
                            .run_layer_band(&band_input, *kind, *window, time_steps, band)?;
                    work += result.stats;
                    write_row_band(&mut levels, &result.levels, band.out_lo);
                }
                return Ok((levels, work));
            }
            let result = units.pool.run_layer(current, *kind, *window, time_steps)?;
            Ok((result.levels, result.stats))
        }
        (SnnLayer::Flatten, _) => {
            let volume = current.len();
            let flattened = current
                .clone()
                .reshape(vec![volume])
                .map_err(AccelError::Tensor)?;
            let work = UnitStats {
                cycles: volume as u64,
                activation_reads: volume as u64,
                output_writes: volume as u64,
                ..UnitStats::default()
            };
            Ok((flattened, work))
        }
        // Transaction-level execution: functional math, no unit-level
        // operation counting.
        (layer, ExecutionMode::Transaction) => {
            let next = functional_layer(layer, current, max_level)?;
            Ok((next, UnitStats::default()))
        }
    }
}

/// The row bands a fused conv → pool pair streams through its queue.
///
/// A tiled convolution step streams its planner bands when every band is
/// aligned to the pooling window (each band then pools independently);
/// unaligned bands return `None`, which makes the caller fall back to the
/// bit-identical sequential tiled path.  An untiled conv step streams one
/// band covering the whole layer — but only while the pooling step is
/// untiled too: with an untiled producer and a tiled consumer, a streamed
/// item would be a whole-height channel group, i.e. a working set the tile
/// plan just ruled out, so that pair also falls back.  At transaction
/// level tiling is ignored entirely and the full band always streams.
fn fused_band_list(
    conv_step: &LayerProgram,
    window: usize,
    pool_tiled: bool,
    mode: ExecutionMode,
) -> Option<Vec<RowBand>> {
    let full = RowBand {
        out_lo: 0,
        out_hi: conv_step.out_shape[1],
        in_lo: 0,
        in_hi: conv_step.in_shape[1],
    };
    match (&conv_step.tiling, mode) {
        (Some(LayerTiling::RowBands { bands, .. }), ExecutionMode::CycleAccurate) => {
            if window > 0 && bands.iter().all(|b| b.out_rows() % window == 0) {
                Some(bands.clone())
            } else {
                None
            }
        }
        (None, ExecutionMode::CycleAccurate) if pool_tiled => None,
        _ => Some(vec![full]),
    }
}

/// Executes a fused convolution → pooling stage pair with channel-group
/// and row-band overlap.
///
/// The producer (convolution stage, scoped thread) walks the row bands in
/// order and, per band, computes one channel group per pass — slicing the
/// kernel and bias exactly along the hardware's group boundaries — then
/// pushes each requantized `(band × group)` tile into the bounded queue;
/// the consumer (pooling stage, calling thread) pools each tile as it
/// arrives and writes it into the output tensor at its channel and row
/// offset.  Accumulators and every `UnitStats` counter are linear in the
/// output channels and partition over the output rows (the pipeline-fill
/// cycles belong to the band containing row zero), so the summed tile
/// results are bit-identical to the whole-layer sequential execution.
#[allow(clippy::too_many_arguments)]
fn run_fused_conv_pool(
    units: &Units,
    input: &Tensor<i64>,
    conv_layer: &SnnLayer,
    pool_layer: &SnnLayer,
    pool_step: &LayerProgram,
    bands: &[RowBand],
    group_size: usize,
    time_steps: usize,
    max_level: i64,
    mode: ExecutionMode,
    queue_capacity: usize,
) -> Result<(Tensor<i64>, UnitStats, UnitStats)> {
    let SnnLayer::Conv {
        weight_codes,
        bias_acc,
        stride,
        padding,
        requant,
    } = conv_layer
    else {
        return Err(AccelError::UnsupportedLayer {
            layer: pool_step.index.saturating_sub(1),
            context: "fused pair expects a convolution producer".to_string(),
        });
    };
    let SnnLayer::Pool { kind, window } = pool_layer else {
        return Err(AccelError::UnsupportedLayer {
            layer: pool_step.index,
            context: "fused pair expects a pooling consumer".to_string(),
        });
    };

    let c_out = weight_codes.shape().dims()[0];
    let in_h = input.shape().dims()[1];
    let pool_dims = pool_step.out_shape.clone();
    let (pool_h, pool_w) = (pool_dims[1], pool_dims[2]);
    let mut pooled = Tensor::filled(pool_dims, 0i64);

    // Queue items: (channel offset, pooled row offset, conv band levels).
    let queue: BoundedQueue<(usize, usize, Tensor<i64>)> = BoundedQueue::new(queue_capacity);
    let mut conv_work: Result<UnitStats> = Ok(UnitStats::default());
    let mut pool_work: Result<UnitStats> = Ok(UnitStats::default());

    thread::scope(|scope| {
        let queue = &queue;
        let producer = scope.spawn(move || {
            let run = || -> Result<UnitStats> {
                let mut work = UnitStats::default();
                'bands: for band in bands {
                    // Gather the band once; every channel group reuses it.
                    let gathered;
                    let band_input = if band.in_lo == 0 && band.in_hi == in_h {
                        input
                    } else {
                        gathered = copy_row_band(input, band.in_lo, band.in_hi)?;
                        &gathered
                    };
                    for lo in (0..c_out).step_by(group_size.max(1)) {
                        let hi = (lo + group_size).min(c_out);
                        let (levels, stats) = conv_band_group(
                            units,
                            band_input,
                            weight_codes,
                            bias_acc,
                            lo,
                            hi,
                            time_steps,
                            *stride,
                            *padding,
                            *requant,
                            max_level,
                            mode,
                            band,
                        )?;
                        work += stats;
                        if !queue.push((lo, band.out_lo / (*window).max(1), levels)) {
                            break 'bands; // consumer closed after an error
                        }
                    }
                }
                Ok(work)
            };
            let result = run();
            queue.finish();
            result
        });

        // Pooling stage on the calling thread.
        let consumed = (|| -> Result<UnitStats> {
            let mut work = UnitStats::default();
            while let Some((lo, row_lo, levels)) = queue.pop() {
                let (chunk, stats) = pool_group(units, &levels, *kind, *window, time_steps, mode)?;
                work += stats;
                let c_dims = chunk.shape().dims();
                let (g, bh) = (c_dims[0], c_dims[1]);
                let src = chunk.as_slice();
                let dst = pooled.as_mut_slice();
                for c in 0..g {
                    let plane = (lo + c) * pool_h * pool_w;
                    dst[plane + row_lo * pool_w..plane + (row_lo + bh) * pool_w]
                        .copy_from_slice(&src[c * bh * pool_w..(c + 1) * bh * pool_w]);
                }
            }
            Ok(work)
        })();
        if consumed.is_err() {
            queue.close();
        }
        pool_work = consumed;
        conv_work = match producer.join() {
            Ok(result) => result,
            Err(payload) => std::panic::resume_unwind(payload),
        };
    });

    Ok((pooled, conv_work?, pool_work?))
}

/// Computes the convolution of one `(row band × channel group)` tile —
/// output channels `lo..hi` over the band's output rows — and requantizes
/// the accumulators to levels.
#[allow(clippy::too_many_arguments)]
fn conv_band_group(
    units: &Units,
    band_input: &Tensor<i64>,
    weight_codes: &Tensor<i64>,
    bias_acc: &Tensor<i64>,
    lo: usize,
    hi: usize,
    time_steps: usize,
    stride: usize,
    padding: usize,
    requant: Option<f32>,
    max_level: i64,
    mode: ExecutionMode,
    band: &RowBand,
) -> Result<(Tensor<i64>, UnitStats)> {
    let k_dims = weight_codes.shape().dims();
    let (c_in, kr, kc) = (k_dims[1], k_dims[2], k_dims[3]);
    let per_channel = c_in * kr * kc;
    let kernel = Tensor::from_vec(
        vec![hi - lo, c_in, kr, kc],
        weight_codes.as_slice()[lo * per_channel..hi * per_channel].to_vec(),
    )
    .map_err(AccelError::Tensor)?;
    let bias = Tensor::from_vec(vec![hi - lo], bias_acc.as_slice()[lo..hi].to_vec())
        .map_err(AccelError::Tensor)?;
    let (accumulators, stats) = match mode {
        ExecutionMode::CycleAccurate => {
            let result = units.conv.run_layer_band(
                band_input, &kernel, &bias, time_steps, stride, padding, band,
            )?;
            (result.accumulators, result.stats)
        }
        ExecutionMode::Transaction => (
            ops::conv2d(band_input, &kernel, Some(&bias), stride, padding)
                .map_err(AccelError::Tensor)?,
            UnitStats::default(),
        ),
    };
    Ok((apply_requant(&accumulators, requant, max_level), stats))
}

/// Pools one channel group.
fn pool_group(
    units: &Units,
    levels: &Tensor<i64>,
    kind: PoolKind,
    window: usize,
    time_steps: usize,
    mode: ExecutionMode,
) -> Result<(Tensor<i64>, UnitStats)> {
    match mode {
        ExecutionMode::CycleAccurate => {
            let result = units.pool.run_layer(levels, kind, window, time_steps)?;
            Ok((result.levels, result.stats))
        }
        ExecutionMode::Transaction => {
            let pooled = match kind {
                PoolKind::Average => ops::avg_pool2d(levels, window).map_err(AccelError::Tensor)?,
                PoolKind::Max => ops::max_pool2d(levels, window).map_err(AccelError::Tensor)?,
            };
            Ok((pooled, UnitStats::default()))
        }
    }
}

pub(crate) fn apply_requant(
    acc: &Tensor<i64>,
    requant: Option<f32>,
    max_level: i64,
) -> Tensor<i64> {
    match requant {
        Some(r) => acc.map(|&v| requantize(v, r, max_level)),
        None => acc.clone(),
    }
}

/// Functional (transaction-level) execution of one layer, shared with the
/// integer reference model.
pub(crate) fn functional_layer(
    layer: &SnnLayer,
    current: &Tensor<i64>,
    max_level: i64,
) -> Result<Tensor<i64>> {
    let next = match layer {
        SnnLayer::Conv {
            weight_codes,
            bias_acc,
            stride,
            padding,
            requant,
        } => {
            let acc = ops::conv2d(current, weight_codes, Some(bias_acc), *stride, *padding)
                .map_err(AccelError::Tensor)?;
            apply_requant(&acc, *requant, max_level)
        }
        SnnLayer::Linear {
            weight_codes,
            bias_acc,
            requant,
        } => {
            let acc =
                ops::linear(current, weight_codes, Some(bias_acc)).map_err(AccelError::Tensor)?;
            apply_requant(&acc, *requant, max_level)
        }
        SnnLayer::Pool { kind, window } => match kind {
            PoolKind::Average => ops::avg_pool2d(current, *window).map_err(AccelError::Tensor)?,
            PoolKind::Max => ops::max_pool2d(current, *window).map_err(AccelError::Tensor)?,
        },
        SnnLayer::Flatten => {
            let volume = current.len();
            current
                .clone()
                .reshape(vec![volume])
                .map_err(AccelError::Tensor)?
        }
    };
    Ok(next)
}

/// Derives the per-unit busy/idle cycle counters of one inference from the
/// static schedule.
///
/// Busy cycles count only the units that actually compute: convolution
/// layers are straggler-aware through [`ConvGroupPlan`] (a pass whose
/// channel group does not fill all units leaves the rest idle), pooling
/// and linear stages are single units occupied for their compute cycles.
/// Flatten is a buffer transfer, not a processing unit, so it contributes
/// only to the makespan.  Everything is derived from the compiled program,
/// so sequential and pipelined executions report identical utilisation.
pub fn utilisation_from_program(
    config: &AcceleratorConfig,
    program: &Program,
) -> Vec<UnitUtilisation> {
    let makespan: u64 = program.steps.iter().map(|s| s.timing.total_cycles()).sum();
    let mut conv_busy = 0u64;
    let mut pool_busy = 0u64;
    let mut linear_busy = 0u64;
    for step in &program.steps {
        match step.kind {
            StageKind::Convolution => {
                let groups = step.channel_groups.max(1) as u64;
                let plan = ConvGroupPlan::for_schedule(
                    config.conv_units,
                    step.channels_per_unit,
                    step.out_shape[0],
                    step.timing.compute_cycles / groups,
                );
                conv_busy += plan.busy_unit_cycles();
            }
            StageKind::Pooling => pool_busy += step.timing.compute_cycles,
            StageKind::Linear => linear_busy += step.timing.compute_cycles,
            StageKind::Flatten => {}
        }
    }
    vec![
        UnitUtilisation {
            kind: StageKind::Convolution,
            units: config.conv_units,
            busy_cycles: conv_busy,
            total_cycles: makespan * config.conv_units as u64,
        },
        UnitUtilisation {
            kind: StageKind::Pooling,
            units: 1,
            busy_cycles: pool_busy,
            total_cycles: makespan,
        },
        UnitUtilisation {
            kind: StageKind::Linear,
            units: 1,
            busy_cycles: linear_busy,
            total_cycles: makespan,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn bounded_queue_delivers_in_order_and_drains_on_finish() {
        let queue: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(queue.push(1));
        assert!(queue.push(2));
        queue.finish();
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let queue: BoundedQueue<usize> = BoundedQueue::new(1);
        let max_in_flight = AtomicUsize::new(0);
        thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..50 {
                    assert!(queue.push(i));
                }
                queue.finish();
            });
            let mut expected = 0;
            while let Some(v) = queue.pop() {
                assert_eq!(v, expected);
                expected += 1;
                max_in_flight.fetch_max(v, Ordering::Relaxed);
            }
            assert_eq!(expected, 50);
        });
    }

    #[test]
    fn closed_queue_rejects_pushes() {
        let queue: BoundedQueue<u32> = BoundedQueue::new(1);
        assert!(queue.push(7));
        queue.close();
        assert!(!queue.push(8));
    }

    #[test]
    fn close_unblocks_a_waiting_producer() {
        let queue: BoundedQueue<u32> = BoundedQueue::new(1);
        assert!(queue.push(1)); // queue now full
        thread::scope(|scope| {
            let handle = scope.spawn(|| queue.push(2)); // blocks until close
            std::thread::sleep(std::time::Duration::from_millis(10));
            queue.close();
            assert!(!handle.join().unwrap());
        });
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let queue: BoundedQueue<u32> = BoundedQueue::new(0);
        assert!(queue.push(9));
        queue.finish();
        assert_eq!(queue.pop(), Some(9));
    }
}
