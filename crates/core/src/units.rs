//! Shared bookkeeping for the processing-unit simulators.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Cycle and operation counters reported by a processing unit after
/// executing (part of) a layer.
///
/// The counters are **analytical**: the accelerator's schedule is static,
/// so the units derive `cycles` and the memory-access counts in closed
/// form from the loop bounds, and the data-dependent `adder_ops` from
/// packed-plane popcounts — nothing is stepped inside a compute loop.
/// Property tests assert the derived values are bit-identical to the
/// counter-stepped reference models in [`crate::reference`].
///
/// The counters drive the latency, energy and memory-traffic figures of the
/// run reports:
///
/// * `cycles` — clock cycles consumed by the unit.
/// * `adder_ops` — number of adder activations (an adder only toggles when
///   an input spike gates it on, which is what makes sparse spike trains
///   cheap).
/// * `activation_reads` / `kernel_reads` / `output_writes` — memory accesses
///   to the activation buffers and the weight memory, the quantity the
///   paper's dataflow is designed to minimise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitStats {
    /// Clock cycles consumed.
    pub cycles: u64,
    /// Number of adder activations (gated by spikes).
    pub adder_ops: u64,
    /// Activation-buffer read operations (one feature-map row each).
    pub activation_reads: u64,
    /// Weight-memory read operations (one kernel/weight word each).
    pub kernel_reads: u64,
    /// Activation-buffer write operations (one output value each).
    pub output_writes: u64,
    /// Partial sums reused through the product-sparsity prepass (one per
    /// reused `(row, kernel row, output channel)` event; zero with the
    /// prepass disabled).
    #[serde(default)]
    pub reused_partials: u64,
    /// Spike bits scattered as pattern *differences* by reused rows —
    /// the residual work the prepass could not share.
    #[serde(default)]
    pub difference_bits: u64,
}

impl UnitStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        UnitStats::default()
    }

    /// Total number of memory accesses of any kind.
    pub fn total_memory_accesses(&self) -> u64 {
        self.activation_reads + self.kernel_reads + self.output_writes
    }
}

impl Add for UnitStats {
    type Output = UnitStats;

    fn add(self, rhs: UnitStats) -> UnitStats {
        UnitStats {
            cycles: self.cycles + rhs.cycles,
            adder_ops: self.adder_ops + rhs.adder_ops,
            activation_reads: self.activation_reads + rhs.activation_reads,
            kernel_reads: self.kernel_reads + rhs.kernel_reads,
            output_writes: self.output_writes + rhs.output_writes,
            reused_partials: self.reused_partials + rhs.reused_partials,
            difference_bits: self.difference_bits + rhs.difference_bits,
        }
    }
}

impl AddAssign for UnitStats {
    fn add_assign(&mut self, rhs: UnitStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let a = UnitStats {
            cycles: 10,
            adder_ops: 5,
            activation_reads: 2,
            kernel_reads: 3,
            output_writes: 1,
            reused_partials: 4,
            difference_bits: 6,
        };
        let b = UnitStats {
            cycles: 1,
            adder_ops: 1,
            activation_reads: 1,
            kernel_reads: 1,
            output_writes: 1,
            reused_partials: 1,
            difference_bits: 1,
        };
        let sum = a + b;
        assert_eq!(sum.cycles, 11);
        assert_eq!(sum.total_memory_accesses(), 3 + 4 + 2);
        assert_eq!(sum.reused_partials, 5);
        assert_eq!(sum.difference_bits, 7);
        let mut acc = UnitStats::new();
        acc += a;
        acc += b;
        assert_eq!(acc, sum);
    }
}
