//! Run and design reports: the quantities the paper's evaluation tables are
//! built from.

use crate::config::AcceleratorConfig;
use crate::cost::{self, PowerEstimate, ResourceEstimate};
use crate::memory::{ActivationBufferPlan, MemoryTraffic, WeightMemoryPlan};
use crate::timing::{StageKind, TimingReport};
use crate::units::UnitStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Execution record of one layer during a simulated inference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerExecution {
    /// Layer index in the network.
    pub index: usize,
    /// Layer notation (`6C5`, `P2`, ...).
    pub notation: String,
    /// Which stage executed it.
    pub kind: StageKind,
    /// Wall-clock cycles the layer occupied the accelerator
    /// (work divided over the parallel units, plus weight fetches).
    pub latency_cycles: u64,
    /// Total work performed by the processing units (cycles summed over all
    /// units, adder activations, memory accesses).
    pub work: UnitStats,
}

/// Modelled busy/idle occupancy of one kind of processing unit over an
/// inference, derived from the static schedule (so it is identical for the
/// sequential and pipelined execution paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitUtilisation {
    /// Which processing stage the figure describes.
    pub kind: StageKind,
    /// Number of physical units of this kind.
    pub units: usize,
    /// Unit-cycles spent computing (straggler channel groups count only
    /// their active units — see [`crate::timing::ConvGroupPlan`]).
    pub busy_cycles: u64,
    /// Unit-cycles available while the network ran (makespan × `units`).
    pub total_cycles: u64,
}

impl UnitUtilisation {
    /// Busy fraction in `0.0..=1.0` (`0.0` for an empty schedule).
    pub fn utilisation(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / self.total_cycles as f64
    }

    /// Idle unit-cycles.
    pub fn idle_cycles(&self) -> u64 {
        self.total_cycles.saturating_sub(self.busy_cycles)
    }
}

/// Result of simulating one inference on the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Predicted class (argmax of the integer logits).
    pub prediction: usize,
    /// Raw integer logits of the classifier layer.
    pub logits: Vec<i64>,
    /// Per-layer execution records.
    pub layers: Vec<LayerExecution>,
    /// Spike-train length used.
    pub time_steps: usize,
    /// Aggregate memory traffic.
    pub traffic: MemoryTraffic,
    /// Effective host thread budget the execution drew from (the global
    /// [`snn_parallel::ThreadBudget`], shared by batch workers, channel
    /// parallelism and pipeline stage threads) — **not** a per-call thread
    /// count, so oversubscription regressions show up in bench output.
    pub thread_budget: usize,
    /// Modelled per-unit busy/idle occupancy over this inference.
    pub utilisation: Vec<UnitUtilisation>,
}

impl RunReport {
    /// Total wall-clock cycles of the inference.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.latency_cycles).sum()
    }

    /// Total work performed by all processing units.
    pub fn total_work(&self) -> UnitStats {
        self.layers
            .iter()
            .fold(UnitStats::new(), |acc, l| acc + l.work)
    }

    /// Latency of one inference in microseconds at the configured clock.
    pub fn latency_us(&self, config: &AcceleratorConfig) -> f64 {
        config.cycles_to_us(self.total_cycles())
    }

    /// Throughput in frames per second assuming back-to-back inferences.
    pub fn throughput_fps(&self, config: &AcceleratorConfig) -> f64 {
        1.0e6 / self.latency_us(config)
    }

    /// Energy of one inference in microjoules using the calibrated power
    /// model.
    pub fn energy_uj(&self, config: &AcceleratorConfig) -> f64 {
        let power = cost::estimate_power(config);
        cost::inference_energy_uj(&power, self.latency_us(config))
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "prediction: {}  (T = {}, {} layers, {} cycles)",
            self.prediction,
            self.time_steps,
            self.layers.len(),
            self.total_cycles()
        )?;
        writeln!(
            f,
            "{:<4} {:<10} {:>14} {:>14} {:>14}",
            "#", "layer", "latency [cyc]", "adder ops", "mem accesses"
        )?;
        for layer in &self.layers {
            writeln!(
                f,
                "{:<4} {:<10} {:>14} {:>14} {:>14}",
                layer.index,
                layer.notation,
                layer.latency_cycles,
                layer.work.adder_ops,
                layer.work.total_memory_accesses()
            )?;
        }
        if !self.utilisation.is_empty() {
            let parts: Vec<String> = self
                .utilisation
                .iter()
                .map(|u| format!("{:?} {:.1}%", u.kind, 100.0 * u.utilisation()))
                .collect();
            writeln!(
                f,
                "unit utilisation: {}  (thread budget {})",
                parts.join(", "),
                self.thread_budget
            )?;
        }
        Ok(())
    }
}

/// Static design-time report: resources, power and predicted timing for a
/// model/configuration pair, without running any data through the
/// simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignReport {
    /// FPGA resource estimate.
    pub resources: ResourceEstimate,
    /// Power estimate.
    pub power: PowerEstimate,
    /// Activation-buffer sizing.
    pub activation_plan: ActivationBufferPlan,
    /// Weight-memory sizing.
    pub weight_plan: WeightMemoryPlan,
    /// Predicted per-layer timing.
    pub timing: TimingReport,
}

impl DesignReport {
    /// Predicted latency in microseconds.
    pub fn latency_us(&self, config: &AcceleratorConfig) -> f64 {
        self.timing.latency_us(config)
    }

    /// Predicted throughput in frames per second.
    pub fn throughput_fps(&self, config: &AcceleratorConfig) -> f64 {
        self.timing.throughput_fps(config)
    }

    /// Predicted energy per inference in microjoules.
    pub fn energy_uj(&self, config: &AcceleratorConfig) -> f64 {
        cost::inference_energy_uj(&self.power, self.latency_us(config))
    }
}

impl fmt::Display for DesignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "resources: {} LUTs, {} FFs, {} BRAM36, {} DSPs",
            self.resources.luts,
            self.resources.flip_flops,
            self.resources.bram36,
            self.resources.dsp
        )?;
        writeln!(
            f,
            "power: {:.2} W (static {:.2} + dynamic {:.2} + dram {:.2})",
            self.power.total_w(),
            self.power.static_w,
            self.power.dynamic_w,
            self.power.dram_w
        )?;
        writeln!(
            f,
            "activation buffers: {} + {} bits (2-D + 1-D, per half), weights: {} bits",
            self.activation_plan.buffer_2d_bits,
            self.activation_plan.buffer_1d_bits,
            self.weight_plan.total_weight_bits
        )?;
        writeln!(f, "predicted cycles: {}", self.timing.total_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::LayerTiming;

    fn dummy_run_report() -> RunReport {
        RunReport {
            prediction: 3,
            logits: vec![0, 1, 2, 10],
            layers: vec![
                LayerExecution {
                    index: 0,
                    notation: "4C3".to_string(),
                    kind: StageKind::Convolution,
                    latency_cycles: 100,
                    work: UnitStats {
                        cycles: 400,
                        adder_ops: 50,
                        activation_reads: 10,
                        kernel_reads: 20,
                        output_writes: 5,
                        ..UnitStats::default()
                    },
                },
                LayerExecution {
                    index: 1,
                    notation: "10".to_string(),
                    kind: StageKind::Linear,
                    latency_cycles: 50,
                    work: UnitStats {
                        cycles: 50,
                        adder_ops: 25,
                        activation_reads: 5,
                        kernel_reads: 10,
                        output_writes: 10,
                        ..UnitStats::default()
                    },
                },
            ],
            time_steps: 3,
            traffic: MemoryTraffic::default(),
            thread_budget: 4,
            utilisation: vec![UnitUtilisation {
                kind: StageKind::Convolution,
                units: 2,
                busy_cycles: 225,
                total_cycles: 300,
            }],
        }
    }

    #[test]
    fn totals_aggregate_layers() {
        let report = dummy_run_report();
        assert_eq!(report.total_cycles(), 150);
        let work = report.total_work();
        assert_eq!(work.cycles, 450);
        assert_eq!(work.adder_ops, 75);
    }

    #[test]
    fn latency_and_throughput_use_the_clock() {
        let report = dummy_run_report();
        let cfg = AcceleratorConfig::default(); // 100 MHz
        assert!((report.latency_us(&cfg) - 1.5).abs() < 1e-9);
        assert!((report.throughput_fps(&cfg) - 1.0e6 / 1.5).abs() < 1e-3);
        assert!(report.energy_uj(&cfg) > 0.0);
    }

    #[test]
    fn display_contains_layer_rows() {
        let report = dummy_run_report();
        let text = report.to_string();
        assert!(text.contains("4C3"));
        assert!(text.contains("prediction: 3"));
        assert!(text.contains("utilisation"));
        assert!(text.contains("thread budget 4"));
    }

    #[test]
    fn utilisation_fractions_are_sane() {
        let u = UnitUtilisation {
            kind: StageKind::Pooling,
            units: 1,
            busy_cycles: 30,
            total_cycles: 120,
        };
        assert!((u.utilisation() - 0.25).abs() < 1e-12);
        assert_eq!(u.idle_cycles(), 90);
        let empty = UnitUtilisation {
            kind: StageKind::Linear,
            units: 1,
            busy_cycles: 0,
            total_cycles: 0,
        };
        assert_eq!(empty.utilisation(), 0.0);
    }

    #[test]
    fn design_report_display_mentions_resources() {
        let cfg = AcceleratorConfig::default();
        let report = DesignReport {
            resources: cost::estimate_resources(&cfg, &snn_model::zoo::tiny_cnn(), 3),
            power: cost::estimate_power(&cfg),
            activation_plan: ActivationBufferPlan::for_network(&snn_model::zoo::tiny_cnn(), 3),
            weight_plan: WeightMemoryPlan::for_network(
                &snn_model::zoo::tiny_cnn(),
                3,
                crate::config::MemoryOption::OnChip,
            ),
            timing: TimingReport {
                layers: vec![LayerTiming {
                    layer: 0,
                    kind: StageKind::Convolution,
                    compute_cycles: 10,
                    weight_fetch_cycles: 0,
                }],
                time_steps: 3,
            },
        };
        let text = report.to_string();
        assert!(text.contains("LUTs"));
        assert!(text.contains("power"));
        assert!(report.latency_us(&cfg) > 0.0);
        assert!(report.throughput_fps(&cfg) > 0.0);
        assert!(report.energy_uj(&cfg) > 0.0);
    }
}
