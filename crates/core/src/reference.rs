//! Retained scalar reference implementations of the processing units.
//!
//! These are the original cycle-by-cycle, counter-stepped models: every
//! `(output channel, time step, input channel, row, tile, kernel row,
//! kernel column)` tuple is walked with scalar loads, and the
//! [`UnitStats`] counters are incremented inside the innermost loops —
//! exactly as the RTL schedules the work.
//!
//! The optimised engines in [`crate::conv`] and [`crate::linear`] traverse
//! packed spike bit-planes instead and *derive* the same counters
//! analytically.  These reference models are kept (rather than deleted) for
//! two reasons:
//!
//! 1. **Verification** — property tests assert that the sparse engines
//!    produce bit-identical accumulators *and* bit-identical `UnitStats`
//!    for arbitrary shapes, strides, paddings and data.
//! 2. **Benchmarking** — the criterion harness measures the sparse engine
//!    against this baseline so the speedup is tracked over time.
//!
//! Nothing in the inference path calls into this module.

use crate::config::ArrayGeometry;
use crate::conv::ConvResult;
use crate::linear::LinearResult;
use crate::units::UnitStats;
use crate::{AccelError, Result};
use snn_tensor::{ops, Tensor};

/// Counter-stepped scalar model of one convolution unit (the seed
/// implementation of [`crate::conv::ConvolutionUnit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceConvolutionUnit {
    geometry: ArrayGeometry,
}

impl ReferenceConvolutionUnit {
    /// Creates a reference convolution unit with the given geometry.
    pub fn new(geometry: ArrayGeometry) -> Self {
        ReferenceConvolutionUnit { geometry }
    }

    /// Number of column tiles needed for an output row of `width` values.
    pub fn column_tiles(&self, width: usize) -> usize {
        width.div_ceil(self.geometry.columns)
    }

    /// Executes one convolution layer cycle by cycle, stepping every
    /// counter in the innermost loops.  Semantics are identical to
    /// [`crate::conv::ConvolutionUnit::run_layer`].
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnsupportedLayer`] when the kernel has more
    /// rows than the adder array, and propagates shape errors.
    pub fn run_layer(
        &self,
        input_levels: &Tensor<i64>,
        kernel_codes: &Tensor<i64>,
        bias_acc: &Tensor<i64>,
        time_steps: usize,
        stride: usize,
        padding: usize,
    ) -> Result<ConvResult> {
        let in_dims = input_levels.shape().dims();
        let k_dims = kernel_codes.shape().dims();
        if in_dims.len() != 3 || k_dims.len() != 4 {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: "convolution unit expects [C,H,W] inputs and [O,C,K,K] kernels"
                    .to_string(),
            });
        }
        let (c_in, h, w) = (in_dims[0], in_dims[1], in_dims[2]);
        let (c_out, kc_in, kr, kc) = (k_dims[0], k_dims[1], k_dims[2], k_dims[3]);
        if kc_in != c_in {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!("kernel expects {kc_in} channels, input has {c_in}"),
            });
        }
        if kr > self.geometry.rows {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "kernel has {kr} rows but the adder array only has {} rows",
                    self.geometry.rows
                ),
            });
        }
        let (h_out, w_out) = ops::conv2d_output_dims((h, w), (kr, kc), stride, padding)
            .map_err(AccelError::Tensor)?;

        let mut accumulators = Tensor::filled(vec![c_out, h_out, w_out], 0i64);
        let mut stats = UnitStats::new();
        let in_data = input_levels.as_slice();
        let k_data = kernel_codes.as_slice();
        let tiles = self.column_tiles(w_out);

        for oc in 0..c_out {
            // Time-step accumulators for this output channel (the output
            // logic's registers).
            let mut channel_acc = vec![0i64; h_out * w_out];
            for t in 0..time_steps {
                // Spike plane bit for this time step: MSB first.
                let bit = time_steps - 1 - t;
                let mut step_sum = vec![0i64; h_out * w_out];
                for ic in 0..c_in {
                    // Pipeline fill for this channel pass.
                    stats.cycles += kr as u64;
                    for oy in 0..h_out {
                        for tile in 0..tiles {
                            let col_start = tile * self.geometry.columns;
                            let col_end = (col_start + self.geometry.columns).min(w_out);
                            // The input logic fetches one input row per
                            // kernel row into the shift register.
                            for ky in 0..kr {
                                let iy = (oy * stride + ky) as isize - padding as isize;
                                stats.activation_reads += 1;
                                stats.cycles += 1; // row load into the shift register
                                for kx in 0..kc {
                                    // One shift of the input register and one
                                    // kernel value broadcast per cycle.
                                    let kernel_value =
                                        k_data[oc * c_in * kr * kc + ic * kr * kc + ky * kc + kx];
                                    stats.kernel_reads += 1;
                                    stats.cycles += 1;
                                    if iy < 0 || iy >= h as isize {
                                        continue; // padding row: all taps silent
                                    }
                                    for ox in col_start..col_end {
                                        let ix = (ox * stride + kx) as isize - padding as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue; // padding column
                                        }
                                        let level =
                                            in_data[ic * h * w + iy as usize * w + ix as usize];
                                        let spike = (level >> bit) & 1 == 1;
                                        if spike {
                                            // Multiplexer admits the kernel
                                            // value into the adder.
                                            step_sum[oy * w_out + ox] += kernel_value;
                                            stats.adder_ops += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                // Output logic: accumulate over input channels happened in
                // `step_sum`; now fold this time step into the running
                // radix accumulation with a single left shift.
                for (acc, s) in channel_acc.iter_mut().zip(step_sum.iter()) {
                    *acc = (*acc << 1) + s;
                }
            }
            // Bias and write-back of the completed output channel.
            let bias = bias_acc.as_slice().get(oc).copied().unwrap_or(0);
            for (idx, acc) in channel_acc.iter().enumerate() {
                accumulators.as_mut_slice()[oc * h_out * w_out + idx] = acc + bias;
                stats.output_writes += 1;
            }
        }

        Ok(ConvResult {
            accumulators,
            stats,
        })
    }
}

/// Counter-stepped scalar model of the linear unit (the seed
/// implementation of [`crate::linear::LinearUnit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceLinearUnit {
    lanes: usize,
}

impl ReferenceLinearUnit {
    /// Creates a reference linear unit with `lanes` parallel output
    /// channels.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "linear unit needs at least one output lane");
        ReferenceLinearUnit { lanes }
    }

    /// Executes one fully-connected layer cycle by cycle.  Semantics are
    /// identical to [`crate::linear::LinearUnit::run_layer`].
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnsupportedLayer`] when shapes do not match.
    pub fn run_layer(
        &self,
        input_levels: &Tensor<i64>,
        weight_codes: &Tensor<i64>,
        bias_acc: &Tensor<i64>,
        time_steps: usize,
    ) -> Result<LinearResult> {
        if input_levels.shape().rank() != 1 || weight_codes.shape().rank() != 2 {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: "linear unit expects a [N] input and [O, N] weights".to_string(),
            });
        }
        let n = input_levels.len();
        let o = weight_codes.shape().dims()[0];
        if weight_codes.shape().dims()[1] != n {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "weight matrix expects {} inputs, activation buffer provides {n}",
                    weight_codes.shape().dims()[1]
                ),
            });
        }

        let in_data = input_levels.as_slice();
        let w_data = weight_codes.as_slice();
        let mut accumulators = vec![0i64; o];
        let mut stats = UnitStats::new();

        // Output channels are processed in groups of `lanes`.
        let groups = o.div_ceil(self.lanes);
        for group in 0..groups {
            let lane_start = group * self.lanes;
            let lane_end = (lane_start + self.lanes).min(o);
            for t in 0..time_steps {
                let bit = time_steps - 1 - t;
                for acc in accumulators.iter_mut().take(lane_end).skip(lane_start) {
                    // Radix shift once per time step per output.
                    *acc <<= 1;
                }
                for ni in 0..n {
                    // One cycle: one input neuron, `lanes` weights fetched.
                    stats.cycles += 1;
                    stats.activation_reads += 1;
                    stats.kernel_reads += (lane_end - lane_start) as u64;
                    let spike = (in_data[ni] >> bit) & 1 == 1;
                    if !spike {
                        continue;
                    }
                    for (oi, acc) in accumulators
                        .iter_mut()
                        .enumerate()
                        .take(lane_end)
                        .skip(lane_start)
                    {
                        *acc += w_data[oi * n + ni];
                        stats.adder_ops += 1;
                    }
                }
            }
        }

        for (acc, &b) in accumulators.iter_mut().zip(bias_acc.as_slice()) {
            *acc += b;
            stats.output_writes += 1;
        }

        Ok(LinearResult {
            accumulators: Tensor::from_vec(vec![o], accumulators).map_err(AccelError::Tensor)?,
            stats,
        })
    }
}
