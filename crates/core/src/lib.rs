//! # snn-accel
//!
//! A software model of the resource-efficient FPGA accelerator for spiking
//! neural networks with radix encoding (DATE 2022).
//!
//! The crate reproduces the paper's hardware architecture at two levels of
//! detail that are verified against each other:
//!
//! * **Bit-plane sparse processing units** — [`conv::ConvolutionUnit`],
//!   [`pool::PoolingUnit`] and [`linear::LinearUnit`] model the
//!   micro-architecture of Fig. 2: the input shift register, the X×Y adder
//!   array with multiplexer gating on spikes, the per-kernel-row pipeline,
//!   the partial-sum propagation and the radix left-shift accumulation in
//!   the output logic.  The engines traverse the activations as packed
//!   spike bit-planes, skipping silent regions a word at a time, and
//!   derive the exact cycle and operation counts analytically; the
//!   counter-stepped originals are retained in [`mod@reference`] and property
//!   tests assert bit-identical accumulators *and* counters.
//! * **Analytical models** — [`timing`] derives layer latencies from the
//!   loop hierarchy of Alg. 1, and [`cost`] estimates LUT/FF/BRAM usage and
//!   power, calibrated against the paper's Tables II and III.
//!
//! The top-level [`sim::Accelerator`] compiles a converted
//! [`snn_model::snn::SnnModel`] onto a configurable number of processing
//! units ([`config::AcceleratorConfig`]), runs inference through the
//! pipelined execution engine in [`exec`] (adjacent convolution → pooling
//! stages overlap through bounded queues, drawing threads from the global
//! [`snn_parallel::ThreadBudget`]), and produces a [`report::RunReport`]
//! with the prediction, latency, energy, memory traffic and per-unit
//! utilisation — the quantities reported in the paper's evaluation.  Deep
//! models run within a fixed on-chip budget: with
//! [`config::AcceleratorConfig::activation_buffer_bytes`] set, the
//! [`memory`] tiling planner splits oversized layers into halo-aware row
//! bands that stream through the buffer pair, which is how full-scale
//! VGG-11 executes cycle-accurately (bit-identical to the untiled
//! oracle).  For serving-scale traffic, [`serve::StreamServer`]
//! micro-batches a bounded submission queue over the same engine.
//!
//! # Example
//!
//! ```
//! use snn_accel::config::AcceleratorConfig;
//! use snn_accel::sim::Accelerator;
//! use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
//! use snn_model::{params::Parameters, zoo};
//! use snn_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = zoo::tiny_cnn();
//! let params = Parameters::he_init(&net, 1)?;
//! let input = Tensor::filled(vec![1, 12, 12], 0.5f32);
//! let stats = CalibrationStats::collect(&net, &params, [&input])?;
//! let snn = convert(&net, &params, &stats, ConversionConfig::default())?;
//!
//! let accel = Accelerator::new(AcceleratorConfig::default());
//! let report = accel.run(&snn, &input)?;
//! assert!(report.prediction < 10);
//! assert!(report.latency_us(&AcceleratorConfig::default()) > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;

pub mod compiler;
pub mod config;
pub mod conv;
pub mod cost;
pub mod dse;
pub mod energy;
pub mod exec;
pub mod linear;
pub mod memory;
pub mod pool;
pub mod reference;
pub mod report;
pub mod serve;
pub mod sim;
pub mod timing;
pub mod units;

pub use error::AccelError;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, AccelError>;
