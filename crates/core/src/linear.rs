//! The linear (fully-connected) unit.
//!
//! Fully-connected layers are matrix multiplications with one distinct
//! weight per accumulation, so — unlike convolution — there is no weight
//! reuse to exploit.  The paper's linear unit therefore maximises memory
//! bandwidth utilisation: new weights are fetched on every clock cycle and
//! fed to a row of adders whose length equals the number of output channels
//! processed in parallel (`linear_lanes` in the configuration).  The unit
//! iterates over input neurons and time steps, gating each addition on the
//! input spike, and accumulates with the same radix left shift as the
//! convolution output logic.

use crate::units::UnitStats;
use crate::{AccelError, Result};
use snn_tensor::Tensor;

/// Output of a linear-unit layer execution.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearResult {
    /// Raw integer accumulators `[O]` (bias included, before
    /// ReLU/requantization).
    pub accumulators: Tensor<i64>,
    /// Cycle and operation counters.
    pub stats: UnitStats,
}

/// Cycle-stepped model of the linear unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearUnit {
    lanes: usize,
}

impl LinearUnit {
    /// Creates a linear unit with `lanes` parallel output channels.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "linear unit needs at least one output lane");
        LinearUnit { lanes }
    }

    /// Number of parallel output channels.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Executes one fully-connected layer.
    ///
    /// * `input_levels` — `[N]` radix levels of the input activations.
    /// * `weight_codes` — `[O, N]` quantized weight codes.
    /// * `bias_acc` — `[O]` biases pre-scaled to accumulator units.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnsupportedLayer`] when shapes do not match.
    pub fn run_layer(
        &self,
        input_levels: &Tensor<i64>,
        weight_codes: &Tensor<i64>,
        bias_acc: &Tensor<i64>,
        time_steps: usize,
    ) -> Result<LinearResult> {
        if input_levels.shape().rank() != 1 || weight_codes.shape().rank() != 2 {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: "linear unit expects a [N] input and [O, N] weights".to_string(),
            });
        }
        let n = input_levels.len();
        let o = weight_codes.shape().dims()[0];
        if weight_codes.shape().dims()[1] != n {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "weight matrix expects {} inputs, activation buffer provides {n}",
                    weight_codes.shape().dims()[1]
                ),
            });
        }

        let in_data = input_levels.as_slice();
        let w_data = weight_codes.as_slice();
        let mut accumulators = vec![0i64; o];
        let mut stats = UnitStats::new();

        // Output channels are processed in groups of `lanes`.
        let groups = o.div_ceil(self.lanes);
        for group in 0..groups {
            let lane_start = group * self.lanes;
            let lane_end = (lane_start + self.lanes).min(o);
            for t in 0..time_steps {
                let bit = time_steps - 1 - t;
                for (oi, acc) in accumulators
                    .iter_mut()
                    .enumerate()
                    .take(lane_end)
                    .skip(lane_start)
                {
                    // Radix shift once per time step per output.
                    *acc <<= 1;
                    let _ = oi;
                }
                for ni in 0..n {
                    // One cycle: one input neuron, `lanes` weights fetched.
                    stats.cycles += 1;
                    stats.activation_reads += 1;
                    stats.kernel_reads += (lane_end - lane_start) as u64;
                    let spike = (in_data[ni] >> bit) & 1 == 1;
                    if !spike {
                        continue;
                    }
                    for (oi, acc) in accumulators
                        .iter_mut()
                        .enumerate()
                        .take(lane_end)
                        .skip(lane_start)
                    {
                        *acc += w_data[oi * n + ni];
                        stats.adder_ops += 1;
                    }
                }
            }
        }

        for (acc, &b) in accumulators.iter_mut().zip(bias_acc.as_slice()) {
            *acc += b;
            stats.output_writes += 1;
        }

        Ok(LinearResult {
            accumulators: Tensor::from_vec(vec![o], accumulators).map_err(AccelError::Tensor)?,
            stats,
        })
    }

    /// Closed-form cycle count of a fully-connected layer on this unit.
    pub fn layer_cycles(&self, inputs: usize, outputs: usize, time_steps: usize) -> u64 {
        (outputs.div_ceil(self.lanes) as u64) * (inputs as u64) * (time_steps as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_tensor::ops;

    #[test]
    fn matches_reference_matrix_multiplication() {
        let input = Tensor::from_vec(vec![5], vec![7i64, 0, 3, 5, 1]).unwrap();
        let weight = Tensor::from_vec(
            vec![3, 5],
            (0..15).map(|v| ((v % 7) as i64) - 3).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(vec![3], vec![10i64, -5, 0]).unwrap();
        let result = LinearUnit::new(2)
            .run_layer(&input, &weight, &bias, 3)
            .unwrap();
        let expected = ops::linear(&input, &weight, Some(&bias)).unwrap();
        assert_eq!(result.accumulators, expected);
    }

    #[test]
    fn lane_count_does_not_change_results() {
        let input = Tensor::from_vec(vec![4], vec![1i64, 2, 3, 4]).unwrap();
        let weight = Tensor::from_vec(vec![4, 4], (0..16).map(|v| v as i64 - 8).collect()).unwrap();
        let bias = Tensor::filled(vec![4], 0i64);
        let one_lane = LinearUnit::new(1)
            .run_layer(&input, &weight, &bias, 3)
            .unwrap();
        let many_lanes = LinearUnit::new(8)
            .run_layer(&input, &weight, &bias, 3)
            .unwrap();
        assert_eq!(one_lane.accumulators, many_lanes.accumulators);
        // More lanes means fewer cycles.
        assert!(many_lanes.stats.cycles < one_lane.stats.cycles);
    }

    #[test]
    fn cycles_match_closed_form() {
        let input = Tensor::filled(vec![20], 5i64);
        let weight = Tensor::filled(vec![7, 20], 1i64);
        let bias = Tensor::filled(vec![7], 0i64);
        let unit = LinearUnit::new(3);
        let result = unit.run_layer(&input, &weight, &bias, 4).unwrap();
        assert_eq!(result.stats.cycles, unit.layer_cycles(20, 7, 4));
        assert_eq!(result.stats.cycles, 3 * 20 * 4);
    }

    #[test]
    fn silent_input_performs_no_additions() {
        let input = Tensor::filled(vec![6], 0i64);
        let weight = Tensor::filled(vec![2, 6], 3i64);
        let bias = Tensor::filled(vec![2], 0i64);
        let result = LinearUnit::new(2)
            .run_layer(&input, &weight, &bias, 4)
            .unwrap();
        assert_eq!(result.stats.adder_ops, 0);
        assert!(result.accumulators.iter().all(|&v| v == 0));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let input = Tensor::filled(vec![4], 1i64);
        let weight = Tensor::filled(vec![2, 5], 1i64);
        let bias = Tensor::filled(vec![2], 0i64);
        assert!(matches!(
            LinearUnit::new(2).run_layer(&input, &weight, &bias, 3),
            Err(AccelError::UnsupportedLayer { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one output lane")]
    fn zero_lanes_rejected() {
        LinearUnit::new(0);
    }
}
