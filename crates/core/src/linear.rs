//! The linear (fully-connected) unit.
//!
//! Fully-connected layers are matrix multiplications with one distinct
//! weight per accumulation, so — unlike convolution — there is no weight
//! reuse to exploit.  The paper's linear unit therefore maximises memory
//! bandwidth utilisation: new weights are fetched on every clock cycle and
//! fed to a row of adders whose length equals the number of output channels
//! processed in parallel (`linear_lanes` in the configuration).  The unit
//! iterates over input neurons and time steps, gating each addition on the
//! input spike, and accumulates with the same radix left shift as the
//! convolution output logic.
//!
//! Like [`crate::conv`], [`LinearUnit::run_layer`] executes that schedule
//! sparsely: the input vector is packed into per-time-step bit planes, the
//! spiking neurons are gathered once from the occupancy mask (word-level
//! skip of silent neurons), and each output accumulates
//! `weight * masked_level` over just those neurons — bit-identical to the
//! radix shift-and-add by the same identity as the convolution engine.
//! The counters are derived from the closed-form schedule (`cycles`,
//! `activation_reads`, `kernel_reads`) plus one plane popcount
//! (`adder_ops`); property tests check them against the counter-stepped
//! [`crate::reference::ReferenceLinearUnit`].

use crate::units::UnitStats;
use crate::{AccelError, Result};
use snn_tensor::{bitplane, simd, Tensor};

/// Output of a linear-unit layer execution.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearResult {
    /// Raw integer accumulators `[O]` (bias included, before
    /// ReLU/requantization).
    pub accumulators: Tensor<i64>,
    /// Cycle and operation counters.
    pub stats: UnitStats,
}

/// Bit-plane sparse model of the linear unit.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearUnit {
    lanes: usize,
    /// Spike density (spiking neurons per input length) at or above which
    /// the layer uses a dense dot product over the masked level vector
    /// instead of the sparse gather.  Never affects results, only host
    /// throughput (same contract as the convolution unit's threshold).
    dense_gather_threshold: f64,
}

impl LinearUnit {
    /// Creates a linear unit with `lanes` parallel output channels and the
    /// default dense-gather threshold.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        Self::with_threshold(lanes, crate::config::DEFAULT_DENSE_GATHER_THRESHOLD)
    }

    /// Creates a linear unit with an explicit dense-gather threshold.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn with_threshold(lanes: usize, dense_gather_threshold: f64) -> Self {
        assert!(lanes > 0, "linear unit needs at least one output lane");
        LinearUnit {
            lanes,
            dense_gather_threshold,
        }
    }

    /// Number of parallel output channels.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The configured dense-gather density threshold.
    pub fn dense_gather_threshold(&self) -> f64 {
        self.dense_gather_threshold
    }

    /// Executes one fully-connected layer.
    ///
    /// * `input_levels` — `[N]` radix levels of the input activations.
    /// * `weight_codes` — `[O, N]` quantized weight codes.
    /// * `bias_acc` — `[O]` biases pre-scaled to accumulator units.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnsupportedLayer`] when shapes do not match or
    /// `time_steps` exceeds the 63 payload bits of an `i64` level.
    pub fn run_layer(
        &self,
        input_levels: &Tensor<i64>,
        weight_codes: &Tensor<i64>,
        bias_acc: &Tensor<i64>,
        time_steps: usize,
    ) -> Result<LinearResult> {
        if input_levels.shape().rank() != 1 || weight_codes.shape().rank() != 2 {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: "linear unit expects a [N] input and [O, N] weights".to_string(),
            });
        }
        let n = input_levels.len();
        let o = weight_codes.shape().dims()[0];
        if weight_codes.shape().dims()[1] != n {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "weight matrix expects {} inputs, activation buffer provides {n}",
                    weight_codes.shape().dims()[1]
                ),
            });
        }
        if time_steps > 63 {
            // Same bound as the convolution engine: an i64 level carries at
            // most 63 payload bits.
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "spike trains of {time_steps} steps exceed the 63-bit level payload"
                ),
            });
        }

        let in_data = input_levels.as_slice();
        let w_data = weight_codes.as_slice();
        let mask = bitplane::level_mask(time_steps);

        // Gather the spiking neurons once from the occupancy words (the
        // planes' OR-reduction, built in one pass), folding the plane
        // popcount — silent neurons contribute no bits — into the walk.
        let mut spikes: Vec<(usize, i64)> = Vec::new();
        let mut total_popcount = 0u64;
        if n > 0 {
            let occupancy = bitplane::Occupancy::from_levels(in_data, 1, n, time_steps);
            bitplane::for_each_set_bit(occupancy.row(0), 0, |ni| {
                let level = in_data[ni] & mask;
                total_popcount += u64::from(level.count_ones());
                spikes.push((ni, level));
            });
        }
        // Saturated inputs pay for the sparse indirection without skipping
        // much; switch to a dense SIMD dot over the masked level vector.
        // Both paths sum exactly the terms `weight * masked_level` (silent
        // neurons contribute zero terms), so the choice never changes the
        // accumulators or the counters.
        let dense = spikes.len() as f64 >= self.dense_gather_threshold * n as f64;
        let masked_levels: Vec<i64> = if dense {
            in_data.iter().map(|&v| v & mask).collect()
        } else {
            Vec::new()
        };

        // Derived statistics: the schedule visits every (group, time step,
        // neuron) slot regardless of the data; only the adder activity is
        // data-dependent (every spike bit toggles one adder per output in
        // the group, i.e. `O x popcount` in total).
        let groups = o.div_ceil(self.lanes) as u64;
        let slots = (time_steps * n) as u64;
        let stats = UnitStats {
            cycles: groups * slots,
            adder_ops: o as u64 * total_popcount,
            activation_reads: groups * slots,
            kernel_reads: o as u64 * slots,
            output_writes: o.min(bias_acc.len()) as u64,
            ..UnitStats::default()
        };

        // Sparse accumulation, parallel over output channels when large.
        let mut accumulators = vec![0i64; o];
        let work = o as u64 * spikes.len() as u64;
        let threads = if work >= snn_parallel::MIN_PARALLEL_WORK {
            snn_parallel::default_threads().min(o.max(1))
        } else {
            1
        };
        let chunk = o.div_ceil(threads.max(1)).max(1);
        let spikes = &spikes;
        let masked_levels = &masked_levels;
        snn_parallel::par_chunks_mut(&mut accumulators, chunk, threads, |chunk_index, out| {
            for (offset, acc) in out.iter_mut().enumerate() {
                let oi = chunk_index * chunk + offset;
                let row = &w_data[oi * n..oi * n + n];
                *acc = if dense {
                    simd::dot_i64(masked_levels, row)
                } else {
                    let mut sum = 0i64;
                    for &(ni, level) in spikes {
                        sum += row[ni] * level;
                    }
                    sum
                };
            }
        });

        for (acc, &b) in accumulators.iter_mut().zip(bias_acc.as_slice()) {
            *acc += b;
        }

        Ok(LinearResult {
            accumulators: Tensor::from_vec(vec![o], accumulators).map_err(AccelError::Tensor)?,
            stats,
        })
    }

    /// Executes one fully-connected layer in **lane-aligned output
    /// chunks** — the 1-D counterpart of the row-band tiling in
    /// [`crate::memory::plan_network_tiles`].  The whole input vector
    /// stays resident (every output needs every input) while only
    /// `chunk_outputs` output neurons and their weight rows are staged at
    /// a time, which is what bounds the 1-D activation buffer for
    /// VGG-class classifier layers.
    ///
    /// `chunk_outputs` must be a multiple of the lane count (or cover all
    /// outputs at once): each chunk then occupies a whole number of lane
    /// groups, so the per-chunk cycle counts sum to exactly the untiled
    /// schedule of [`LinearUnit::run_layer`].  Accumulators and all other
    /// counters are bit-identical by linearity in the output neurons.
    ///
    /// # Errors
    ///
    /// As [`LinearUnit::run_layer`], plus
    /// [`AccelError::UnsupportedLayer`] for a zero or misaligned chunk.
    pub fn run_layer_chunked(
        &self,
        input_levels: &Tensor<i64>,
        weight_codes: &Tensor<i64>,
        bias_acc: &Tensor<i64>,
        time_steps: usize,
        chunk_outputs: usize,
    ) -> Result<LinearResult> {
        if weight_codes.shape().rank() != 2 {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: "linear unit expects [O, N] weights".to_string(),
            });
        }
        let o = weight_codes.shape().dims()[0];
        let n = weight_codes.shape().dims()[1];
        if chunk_outputs == 0 || (!chunk_outputs.is_multiple_of(self.lanes) && chunk_outputs < o) {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "output chunk of {chunk_outputs} is not a multiple of the {} lanes",
                    self.lanes
                ),
            });
        }
        if bias_acc.len() != o {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "chunked execution needs one bias per output ({o}), got {}",
                    bias_acc.len()
                ),
            });
        }
        let w_data = weight_codes.as_slice();
        let b_data = bias_acc.as_slice();
        let mut accumulators = Vec::with_capacity(o);
        let mut stats = UnitStats::default();
        for lo in (0..o).step_by(chunk_outputs) {
            let hi = (lo + chunk_outputs).min(o);
            let weights = Tensor::from_vec(vec![hi - lo, n], w_data[lo * n..hi * n].to_vec())
                .map_err(AccelError::Tensor)?;
            let bias = Tensor::from_vec(vec![hi - lo], b_data[lo..hi].to_vec())
                .map_err(AccelError::Tensor)?;
            let part = self.run_layer(input_levels, &weights, &bias, time_steps)?;
            stats += part.stats;
            accumulators.extend_from_slice(part.accumulators.as_slice());
        }
        Ok(LinearResult {
            accumulators: Tensor::from_vec(vec![o], accumulators).map_err(AccelError::Tensor)?,
            stats,
        })
    }

    /// Closed-form cycle count of a fully-connected layer on this unit.
    pub fn layer_cycles(&self, inputs: usize, outputs: usize, time_steps: usize) -> u64 {
        (outputs.div_ceil(self.lanes) as u64) * (inputs as u64) * (time_steps as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceLinearUnit;
    use snn_tensor::ops;

    #[test]
    fn matches_reference_matrix_multiplication() {
        let input = Tensor::from_vec(vec![5], vec![7i64, 0, 3, 5, 1]).unwrap();
        let weight =
            Tensor::from_vec(vec![3, 5], (0..15).map(|v| ((v % 7) as i64) - 3).collect()).unwrap();
        let bias = Tensor::from_vec(vec![3], vec![10i64, -5, 0]).unwrap();
        let result = LinearUnit::new(2)
            .run_layer(&input, &weight, &bias, 3)
            .unwrap();
        let expected = ops::linear(&input, &weight, Some(&bias)).unwrap();
        assert_eq!(result.accumulators, expected);
    }

    #[test]
    fn lane_count_does_not_change_results() {
        let input = Tensor::from_vec(vec![4], vec![1i64, 2, 3, 4]).unwrap();
        let weight = Tensor::from_vec(vec![4, 4], (0..16).map(|v| v as i64 - 8).collect()).unwrap();
        let bias = Tensor::filled(vec![4], 0i64);
        let one_lane = LinearUnit::new(1)
            .run_layer(&input, &weight, &bias, 3)
            .unwrap();
        let many_lanes = LinearUnit::new(8)
            .run_layer(&input, &weight, &bias, 3)
            .unwrap();
        assert_eq!(one_lane.accumulators, many_lanes.accumulators);
        // More lanes means fewer cycles.
        assert!(many_lanes.stats.cycles < one_lane.stats.cycles);
    }

    #[test]
    fn cycles_match_closed_form() {
        let input = Tensor::filled(vec![20], 5i64);
        let weight = Tensor::filled(vec![7, 20], 1i64);
        let bias = Tensor::filled(vec![7], 0i64);
        let unit = LinearUnit::new(3);
        let result = unit.run_layer(&input, &weight, &bias, 4).unwrap();
        assert_eq!(result.stats.cycles, unit.layer_cycles(20, 7, 4));
        assert_eq!(result.stats.cycles, 3 * 20 * 4);
    }

    #[test]
    fn silent_input_performs_no_additions() {
        let input = Tensor::filled(vec![6], 0i64);
        let weight = Tensor::filled(vec![2, 6], 3i64);
        let bias = Tensor::filled(vec![2], 0i64);
        let result = LinearUnit::new(2)
            .run_layer(&input, &weight, &bias, 4)
            .unwrap();
        assert_eq!(result.stats.adder_ops, 0);
        assert!(result.accumulators.iter().all(|&v| v == 0));
    }

    #[test]
    fn lane_aligned_chunks_sum_to_the_untiled_layer() {
        let input =
            Tensor::from_vec(vec![23], (0..23).map(|v| ((v * 11) % 16) as i64).collect()).unwrap();
        let weight = Tensor::from_vec(
            vec![11, 23],
            (0..11 * 23).map(|v| ((v % 7) as i64) - 3).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(vec![11], (0..11).map(|v| v - 4).collect()).unwrap();
        let unit = LinearUnit::new(2);
        let whole = unit.run_layer(&input, &weight, &bias, 4).unwrap();
        // Chunks of 4 outputs = two lane groups each, final chunk of 3.
        let chunked = unit
            .run_layer_chunked(&input, &weight, &bias, 4, 4)
            .unwrap();
        assert_eq!(chunked.accumulators, whole.accumulators);
        assert_eq!(chunked.stats, whole.stats);
        // A chunk covering every output is the untiled execution.
        let all = unit
            .run_layer_chunked(&input, &weight, &bias, 4, 16)
            .unwrap();
        assert_eq!(all.stats, whole.stats);
    }

    #[test]
    fn misaligned_chunk_is_rejected() {
        let input = Tensor::filled(vec![4], 1i64);
        let weight = Tensor::filled(vec![8, 4], 1i64);
        let bias = Tensor::filled(vec![8], 0i64);
        let unit = LinearUnit::new(4);
        assert!(matches!(
            unit.run_layer_chunked(&input, &weight, &bias, 3, 0),
            Err(AccelError::UnsupportedLayer { .. })
        ));
        assert!(matches!(
            unit.run_layer_chunked(&input, &weight, &bias, 3, 6),
            Err(AccelError::UnsupportedLayer { .. })
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let input = Tensor::filled(vec![4], 1i64);
        let weight = Tensor::filled(vec![2, 5], 1i64);
        let bias = Tensor::filled(vec![2], 0i64);
        assert!(matches!(
            LinearUnit::new(2).run_layer(&input, &weight, &bias, 3),
            Err(AccelError::UnsupportedLayer { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one output lane")]
    fn zero_lanes_rejected() {
        LinearUnit::new(0);
    }

    #[test]
    fn overlong_spike_trains_are_rejected() {
        let input = Tensor::filled(vec![4], 1i64);
        let weight = Tensor::filled(vec![2, 4], 1i64);
        let bias = Tensor::filled(vec![2], 0i64);
        let unit = LinearUnit::new(2);
        assert!(unit.run_layer(&input, &weight, &bias, 63).is_ok());
        assert!(matches!(
            unit.run_layer(&input, &weight, &bias, 64),
            Err(AccelError::UnsupportedLayer { .. })
        ));
    }

    #[test]
    fn stats_and_accumulators_match_the_reference_unit() {
        let input =
            Tensor::from_vec(vec![23], (0..23).map(|v| ((v * 11) % 16) as i64).collect()).unwrap();
        let weight = Tensor::from_vec(
            vec![9, 23],
            (0..9 * 23).map(|v| ((v % 7) as i64) - 3).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(vec![9], (0..9).map(|v| v - 4).collect()).unwrap();
        for lanes in [1, 2, 4, 9, 16] {
            for t in [1usize, 3, 6] {
                let fast = LinearUnit::new(lanes)
                    .run_layer(&input, &weight, &bias, t)
                    .unwrap();
                let slow = ReferenceLinearUnit::new(lanes)
                    .run_layer(&input, &weight, &bias, t)
                    .unwrap();
                assert_eq!(fast.accumulators, slow.accumulators, "lanes={lanes} t={t}");
                assert_eq!(fast.stats, slow.stats, "lanes={lanes} t={t}");
            }
        }
    }

    #[test]
    fn out_of_range_levels_are_truncated_like_the_schedule() {
        let input = Tensor::from_vec(vec![3], vec![9i64, -1, 2]).unwrap();
        let weight = Tensor::filled(vec![2, 3], 3i64);
        let bias = Tensor::filled(vec![2], 1i64);
        let fast = LinearUnit::new(2)
            .run_layer(&input, &weight, &bias, 2)
            .unwrap();
        let slow = ReferenceLinearUnit::new(2)
            .run_layer(&input, &weight, &bias, 2)
            .unwrap();
        assert_eq!(fast.accumulators, slow.accumulators);
        assert_eq!(fast.stats, slow.stats);
    }
}
