//! Accelerator configuration.
//!
//! The configuration mirrors the design parameters the paper exposes:
//! the number of convolution units (the parallelism knob of Table II), the
//! adder-array geometry `(X, Y)` of the convolution and pooling units, the
//! number of parallel output lanes of the linear unit, the clock frequency
//! and the weight-memory option (on-chip BRAM vs. external DRAM).

use crate::{AccelError, Result};
use serde::{Deserialize, Serialize};

/// Where convolution kernels and fully-connected weights are stored
/// (Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryOption {
    /// All parameters fit in on-chip block RAM.
    OnChip,
    /// Parameters are fetched from external DRAM before each layer.
    Dram,
}

/// Adder-array geometry of a processing unit: `columns` parallel output
/// positions (X) by `rows` pipelined kernel rows (Y).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// Number of adder columns (X) — parallel output positions per row.
    pub columns: usize,
    /// Number of adder rows (Y) — kernel rows computed in parallel.
    pub rows: usize,
}

impl ArrayGeometry {
    /// Creates a geometry after validating it is non-degenerate.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] if either dimension is zero.
    pub fn new(columns: usize, rows: usize) -> Result<Self> {
        if columns == 0 || rows == 0 {
            return Err(AccelError::InvalidConfig {
                context: format!("adder array geometry {columns}x{rows} must be non-zero"),
            });
        }
        Ok(ArrayGeometry { columns, rows })
    }

    /// Total number of adders in the array.
    pub fn adder_count(&self) -> usize {
        self.columns * self.rows
    }
}

/// Full accelerator configuration.
///
/// The defaults correspond to the paper's LeNet-5 configuration
/// (Section IV-A): convolution units with `(X, Y) = (30, 5)`, pooling units
/// with `(X, Y) = (14, 2)`, 3-bit weights and a 100 MHz clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of convolution units instantiated (1–8 in the paper).
    pub conv_units: usize,
    /// Adder-array geometry of each convolution unit.
    pub conv_geometry: ArrayGeometry,
    /// Adder-array geometry of the pooling unit.
    pub pool_geometry: ArrayGeometry,
    /// Number of parallel output channels of the linear unit (limited by
    /// memory bandwidth in the paper).
    pub linear_lanes: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Weight precision in bits.
    pub weight_bits: u8,
    /// Accumulator width in bits (partial sums are kept at full precision).
    pub accumulator_bits: u8,
    /// Weight-memory option.
    pub memory: MemoryOption,
    /// DRAM bus width in bits (only relevant with [`MemoryOption::Dram`]).
    pub dram_bus_bits: usize,
    /// Spike density (spiking pixels per output-row width) at or above
    /// which the sparse convolution engine switches a row from the sparse
    /// scatter to the padded dense-row gather.  The choice never changes
    /// results — both paths add exactly the same terms — only host-side
    /// throughput, so hosts can calibrate it (e.g. with the criterion
    /// harness) without a rebuild.  The default of 0.5 reproduces the
    /// engine's original fixed `2 * nnz >= w_out` rule.
    pub dense_gather_threshold: f64,
    /// Enable the **product-sparsity** prepass in the convolution engine
    /// (after Prosperity, HPCA 2025): within each input channel of a band,
    /// rows whose spike pattern contains another row's pattern (with equal
    /// levels on the shared support) reuse that row's per-tap partial sums
    /// and only add the difference bits.  Accumulators are bit-identical
    /// either way; `adder_ops` shrinks to mirror the reused work and
    /// [`crate::units::UnitStats::reused_partials`] /
    /// [`crate::units::UnitStats::difference_bits`] report the reuse.  The
    /// schedule counters (`cycles`, reads, writes) keep the baseline
    /// static schedule — this models the op-count saving, not a retimed
    /// pipeline.  Off by default.
    #[serde(default)]
    pub product_sparsity: bool,
    /// On-chip activation-buffer budget in bytes, counting each activation
    /// element as its `T`-bit radix code.  `None` sizes the ping-pong
    /// buffers for the largest feature map (the paper's LeNet-class
    /// configuration); `Some(budget)` makes the compiler plan **row-band
    /// tiles** for every layer whose input + output working set exceeds
    /// the budget (see [`crate::memory::plan_network_tiles`]), which is
    /// what lets full-scale VGG-11 run through the cycle-accurate engine.
    /// Results and reported [`crate::units::UnitStats`] are bit-identical
    /// either way; compilation fails with
    /// [`crate::AccelError::BufferBudget`] when even a single-row tile
    /// cannot fit.
    pub activation_buffer_bytes: Option<u64>,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            conv_units: 2,
            conv_geometry: ArrayGeometry {
                columns: 30,
                rows: 5,
            },
            pool_geometry: ArrayGeometry {
                columns: 14,
                rows: 2,
            },
            linear_lanes: 32,
            clock_mhz: 100.0,
            weight_bits: 3,
            accumulator_bits: 16,
            memory: MemoryOption::OnChip,
            dram_bus_bits: 64,
            dense_gather_threshold: DEFAULT_DENSE_GATHER_THRESHOLD,
            product_sparsity: false,
            activation_buffer_bytes: None,
        }
    }
}

/// Default [`AcceleratorConfig::dense_gather_threshold`]: the engine's
/// original fixed `2 * nnz >= w_out` rule.
pub const DEFAULT_DENSE_GATHER_THRESHOLD: f64 = 0.5;

impl AcceleratorConfig {
    /// The configuration used for the LeNet-5 experiments in Sections IV-B
    /// and IV-C: `(X, Y) = (30, 5)` convolution units, `(14, 2)` pooling
    /// units, 100 MHz.
    pub fn lenet_experiment(conv_units: usize) -> Self {
        AcceleratorConfig {
            conv_units,
            ..AcceleratorConfig::default()
        }
    }

    /// The LeNet-5 deployment of Table III: four convolution units at
    /// 200 MHz.
    pub fn lenet_table3() -> Self {
        AcceleratorConfig {
            conv_units: 4,
            clock_mhz: 200.0,
            ..AcceleratorConfig::default()
        }
    }

    /// The configuration used to deploy the CNN of Fang et al. \[11\]
    /// (Table III): four convolution units with a 3×3-kernel adder array at
    /// 200 MHz.
    pub fn fang_cnn_table3() -> Self {
        AcceleratorConfig {
            conv_units: 4,
            conv_geometry: ArrayGeometry {
                columns: 28,
                rows: 3,
            },
            clock_mhz: 200.0,
            ..AcceleratorConfig::default()
        }
    }

    /// The VGG-11 deployment of Table III: eight convolution units with a
    /// 3×3-kernel adder array, 115 MHz, weights streamed from DRAM.
    pub fn vgg11_table3() -> Self {
        AcceleratorConfig {
            conv_units: 8,
            conv_geometry: ArrayGeometry {
                columns: 32,
                rows: 3,
            },
            pool_geometry: ArrayGeometry {
                columns: 16,
                rows: 2,
            },
            linear_lanes: 32,
            clock_mhz: 115.0,
            weight_bits: 3,
            accumulator_bits: 18,
            memory: MemoryOption::Dram,
            dram_bus_bits: 64,
            dense_gather_threshold: DEFAULT_DENSE_GATHER_THRESHOLD,
            product_sparsity: false,
            activation_buffer_bytes: None,
        }
    }

    /// The VGG-11 deployment of Table III with a paper-scale **tiled**
    /// activation buffer: 8 KiB on chip, more than four times smaller than
    /// VGG-11's largest untiled layer working set at `T = 4`, so every
    /// oversized layer streams through row-band tiles.
    pub fn vgg11_tiled() -> Self {
        AcceleratorConfig {
            activation_buffer_bytes: Some(8 * 1024),
            ..AcceleratorConfig::vgg11_table3()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when any parameter is
    /// degenerate (zero units, zero lanes, non-positive clock, ...).
    pub fn validate(&self) -> Result<()> {
        if self.conv_units == 0 {
            return Err(AccelError::InvalidConfig {
                context: "at least one convolution unit is required".to_string(),
            });
        }
        if self.linear_lanes == 0 {
            return Err(AccelError::InvalidConfig {
                context: "at least one linear output lane is required".to_string(),
            });
        }
        if self.clock_mhz <= 0.0 {
            return Err(AccelError::InvalidConfig {
                context: format!("clock frequency must be positive, got {}", self.clock_mhz),
            });
        }
        if self.weight_bits < 2 || self.weight_bits > 16 {
            return Err(AccelError::InvalidConfig {
                context: format!("weight precision {} outside 2..=16 bits", self.weight_bits),
            });
        }
        if self.dram_bus_bits == 0 {
            return Err(AccelError::InvalidConfig {
                context: "DRAM bus width must be non-zero".to_string(),
            });
        }
        if !self.dense_gather_threshold.is_finite() || self.dense_gather_threshold < 0.0 {
            return Err(AccelError::InvalidConfig {
                context: format!(
                    "dense gather threshold {} must be a finite non-negative density",
                    self.dense_gather_threshold
                ),
            });
        }
        if self.activation_buffer_bytes == Some(0) {
            return Err(AccelError::InvalidConfig {
                context: "activation buffer budget must be non-zero (use None for untiled)"
                    .to_string(),
            });
        }
        ArrayGeometry::new(self.conv_geometry.columns, self.conv_geometry.rows)?;
        ArrayGeometry::new(self.pool_geometry.columns, self.pool_geometry.rows)?;
        Ok(())
    }

    /// Clock period in microseconds.
    pub fn clock_period_us(&self) -> f64 {
        1.0 / self.clock_mhz
    }

    /// Converts a cycle count into microseconds at the configured clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 * self.clock_period_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_lenet_setup() {
        let cfg = AcceleratorConfig::default();
        assert_eq!(cfg.conv_geometry.columns, 30);
        assert_eq!(cfg.conv_geometry.rows, 5);
        assert_eq!(cfg.pool_geometry.columns, 14);
        assert_eq!(cfg.pool_geometry.rows, 2);
        assert_eq!(cfg.weight_bits, 3);
        assert_eq!(cfg.clock_mhz, 100.0);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn table3_configs_are_valid() {
        assert!(AcceleratorConfig::lenet_table3().validate().is_ok());
        assert!(AcceleratorConfig::fang_cnn_table3().validate().is_ok());
        assert!(AcceleratorConfig::vgg11_table3().validate().is_ok());
        assert_eq!(AcceleratorConfig::vgg11_table3().memory, MemoryOption::Dram);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let degenerate = [
            AcceleratorConfig {
                conv_units: 0,
                ..AcceleratorConfig::default()
            },
            AcceleratorConfig {
                clock_mhz: 0.0,
                ..AcceleratorConfig::default()
            },
            AcceleratorConfig {
                linear_lanes: 0,
                ..AcceleratorConfig::default()
            },
            AcceleratorConfig {
                weight_bits: 1,
                ..AcceleratorConfig::default()
            },
            AcceleratorConfig {
                conv_geometry: ArrayGeometry {
                    columns: 0,
                    rows: 5,
                },
                ..AcceleratorConfig::default()
            },
            AcceleratorConfig {
                dense_gather_threshold: f64::NAN,
                ..AcceleratorConfig::default()
            },
            AcceleratorConfig {
                dense_gather_threshold: -0.25,
                ..AcceleratorConfig::default()
            },
        ];
        for cfg in degenerate {
            assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn geometry_adder_count() {
        let g = ArrayGeometry::new(30, 5).unwrap();
        assert_eq!(g.adder_count(), 150);
        assert!(ArrayGeometry::new(0, 5).is_err());
    }

    #[test]
    fn cycle_time_conversion() {
        let cfg = AcceleratorConfig::lenet_experiment(2);
        assert!((cfg.cycles_to_us(100) - 1.0).abs() < 1e-9);
        let fast = AcceleratorConfig::lenet_table3();
        assert!((fast.cycles_to_us(200) - 1.0).abs() < 1e-9);
    }
}
