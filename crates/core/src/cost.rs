//! FPGA resource and power models.
//!
//! The paper implements all arithmetic in LUTs and carry logic (no DSP
//! slices) on a Xilinx Virtex UltraScale+ XCVU13P.  This module estimates
//! lookup-table (LUT), flip-flop (FF) and block-RAM usage plus power from
//! the accelerator configuration and the network being deployed.
//!
//! The per-component constants are **calibrated against the paper's own
//! measurements** (Table II for the LUT/FF/power scaling with the number of
//! convolution units, Table III for the full-system operating points); the
//! structure of the model — a fixed base plus a per-unit cost that scales
//! with the adder count and accumulator width, plus a DRAM-interface adder —
//! is what lets it extrapolate to other configurations.

use crate::config::{AcceleratorConfig, MemoryOption};
use crate::memory::{ActivationBufferPlan, WeightMemoryPlan};
use serde::{Deserialize, Serialize};
use snn_model::NetworkSpec;

/// Base LUT cost of the always-present blocks: controller, pooling unit,
/// linear unit and buffer interfaces.  Calibrated to Table II (one
/// convolution unit uses 11 k LUTs in total).
const BASE_LUT: f64 = 6_600.0;
/// Base flip-flop cost of the always-present blocks.
const BASE_FF: f64 = 5_900.0;
/// LUTs per adder bit in the convolution array (carry-logic adder plus the
/// spike-gating multiplexer).
const LUT_PER_ADDER_BIT: f64 = 1.8;
/// Flip-flops per adder bit (pipeline registers between adder rows).
const FF_PER_ADDER_BIT: f64 = 1.7;
/// LUTs per input-shift-register column (input logic of Fig. 2).
const LUT_PER_SHIFT_COLUMN: f64 = 8.0;
/// Flip-flops per input-shift-register column.
const FF_PER_SHIFT_COLUMN: f64 = 6.0;
/// Extra LUT/FF cost of the DRAM memory interface (memory controller,
/// AXI data movers) used when parameters do not fit on chip.
const DRAM_INTERFACE_LUT: f64 = 20_000.0;
const DRAM_INTERFACE_FF: f64 = 22_000.0;

/// Static power of the FPGA fabric plus the always-on logic, in watts.
/// Calibrated to Table II's single-unit operating point (3.07 W).
const STATIC_POWER_W: f64 = 2.95;
/// Dynamic power of one convolution unit at the 100 MHz reference clock.
const CONV_UNIT_POWER_W_AT_100MHZ: f64 = 0.03;
/// Dynamic power of the shared pooling/linear units and buffers at 100 MHz.
const SHARED_POWER_W_AT_100MHZ: f64 = 0.08;
/// Additional power of the external DRAM and its PHY when in use.
const DRAM_POWER_W: f64 = 1.3;

/// Estimated FPGA resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops.
    pub flip_flops: u64,
    /// 36 kb block RAMs (activations + on-chip weights).
    pub bram36: u64,
    /// DSP slices — always zero: the design uses LUT/carry arithmetic only.
    pub dsp: u64,
}

/// Estimated power breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Static (leakage + always-on) power in watts.
    pub static_w: f64,
    /// Dynamic power of the programmable logic in watts.
    pub dynamic_w: f64,
    /// DRAM interface power in watts (zero for on-chip weights).
    pub dram_w: f64,
}

impl PowerEstimate {
    /// Total power in watts.
    pub fn total_w(&self) -> f64 {
        self.static_w + self.dynamic_w + self.dram_w
    }
}

/// Estimates the per-convolution-unit LUT cost for a configuration.
pub fn conv_unit_luts(config: &AcceleratorConfig) -> f64 {
    let adders = config.conv_geometry.adder_count() as f64;
    let acc_bits = config.accumulator_bits as f64;
    adders * acc_bits * LUT_PER_ADDER_BIT
        + config.conv_geometry.columns as f64 * LUT_PER_SHIFT_COLUMN
}

/// Estimates the per-convolution-unit flip-flop cost for a configuration.
pub fn conv_unit_ffs(config: &AcceleratorConfig) -> f64 {
    let adders = config.conv_geometry.adder_count() as f64;
    let acc_bits = config.accumulator_bits as f64;
    adders * acc_bits * FF_PER_ADDER_BIT + config.conv_geometry.columns as f64 * FF_PER_SHIFT_COLUMN
}

/// Estimates LUT/FF/BRAM usage for deploying `net` on the configured
/// accelerator with spike trains of length `time_steps`.
pub fn estimate_resources(
    config: &AcceleratorConfig,
    net: &NetworkSpec,
    time_steps: usize,
) -> ResourceEstimate {
    let mut luts = BASE_LUT + config.conv_units as f64 * conv_unit_luts(config);
    let mut ffs = BASE_FF + config.conv_units as f64 * conv_unit_ffs(config);
    if config.memory == MemoryOption::Dram {
        luts += DRAM_INTERFACE_LUT;
        ffs += DRAM_INTERFACE_FF;
    }
    let activations = ActivationBufferPlan::for_network(net, time_steps);
    let weights = WeightMemoryPlan::for_network(net, config.weight_bits, config.memory);
    ResourceEstimate {
        luts: luts.round() as u64,
        flip_flops: ffs.round() as u64,
        bram36: activations.bram36() + weights.bram36(),
        dsp: 0,
    }
}

/// Estimates the power of the configured accelerator.
pub fn estimate_power(config: &AcceleratorConfig) -> PowerEstimate {
    let clock_scale = config.clock_mhz / 100.0;
    let dynamic_w = (config.conv_units as f64 * CONV_UNIT_POWER_W_AT_100MHZ
        + SHARED_POWER_W_AT_100MHZ)
        * clock_scale;
    let dram_w = match config.memory {
        MemoryOption::OnChip => 0.0,
        MemoryOption::Dram => DRAM_POWER_W,
    };
    PowerEstimate {
        static_w: STATIC_POWER_W,
        dynamic_w,
        dram_w,
    }
}

/// Energy of one inference in microjoules, given its latency.
pub fn inference_energy_uj(power: &PowerEstimate, latency_us: f64) -> f64 {
    power.total_w() * latency_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::zoo;

    #[test]
    fn resources_scale_almost_linearly_with_conv_units_like_table2() {
        let net = zoo::lenet5();
        let res =
            |units: usize| estimate_resources(&AcceleratorConfig::lenet_experiment(units), &net, 3);
        let r1 = res(1);
        let r2 = res(2);
        let r4 = res(4);
        let r8 = res(8);
        // Strictly increasing.
        assert!(r1.luts < r2.luts && r2.luts < r4.luts && r4.luts < r8.luts);
        // Increment per added unit is constant (linear scaling).
        let d12 = r2.luts - r1.luts;
        let d48 = (r8.luts - r4.luts) / 4;
        assert_eq!(d12, d48);
        // Table II reports 11k/15k/24k/42k LUTs for 1/2/4/8 units; accept a
        // generous band around those values.
        assert!(
            (8_000..16_000).contains(&r1.luts),
            "1-unit LUTs {}",
            r1.luts
        );
        assert!(
            (30_000..55_000).contains(&r8.luts),
            "8-unit LUTs {}",
            r8.luts
        );
    }

    #[test]
    fn flip_flops_track_luts() {
        let net = zoo::lenet5();
        let r4 = estimate_resources(&AcceleratorConfig::lenet_experiment(4), &net, 3);
        // Table II: FF count is slightly below the LUT count at every point.
        assert!(r4.flip_flops < r4.luts);
        assert!(r4.flip_flops as f64 > r4.luts as f64 * 0.7);
    }

    #[test]
    fn no_dsp_slices_are_used() {
        let net = zoo::lenet5();
        let r = estimate_resources(&AcceleratorConfig::default(), &net, 4);
        assert_eq!(r.dsp, 0);
    }

    #[test]
    fn dram_option_costs_extra_logic() {
        let net = zoo::vgg11(100);
        let on_chip = AcceleratorConfig {
            memory: MemoryOption::OnChip,
            ..AcceleratorConfig::vgg11_table3()
        };
        let dram = AcceleratorConfig::vgg11_table3();
        let r_on = estimate_resources(&on_chip, &net, 6);
        let r_dram = estimate_resources(&dram, &net, 6);
        assert!(r_dram.luts > r_on.luts);
        // But DRAM storage needs far fewer BRAMs than keeping 28.5M
        // parameters on chip.
        assert!(r_dram.bram36 < r_on.bram36);
    }

    #[test]
    fn power_matches_table2_trend() {
        // Table II at 100 MHz: 3.07, 3.09, 3.17, 3.28 W for 1, 2, 4, 8 units.
        let p =
            |units: usize| estimate_power(&AcceleratorConfig::lenet_experiment(units)).total_w();
        assert!((p(1) - 3.07).abs() < 0.1, "1 unit: {}", p(1));
        assert!((p(2) - 3.09).abs() < 0.1, "2 units: {}", p(2));
        assert!((p(4) - 3.17).abs() < 0.12, "4 units: {}", p(4));
        assert!((p(8) - 3.28).abs() < 0.15, "8 units: {}", p(8));
        // Monotone in the number of units.
        assert!(p(1) < p(2) && p(2) < p(4) && p(4) < p(8));
    }

    #[test]
    fn power_scales_with_clock_and_dram() {
        let lenet_200 = estimate_power(&AcceleratorConfig::lenet_table3());
        let lenet_100 = estimate_power(&AcceleratorConfig::lenet_experiment(4));
        assert!(lenet_200.total_w() > lenet_100.total_w());
        // Table III: LeNet at 200 MHz with 4 units draws 3.4 W.
        assert!((lenet_200.total_w() - 3.4).abs() < 0.2);
        // VGG-11 at 115 MHz with 8 units and DRAM draws 4.9 W.
        let vgg = estimate_power(&AcceleratorConfig::vgg11_table3());
        assert!(
            (vgg.total_w() - 4.9).abs() < 0.5,
            "VGG power {}",
            vgg.total_w()
        );
        assert!(vgg.dram_w > 0.0);
    }

    #[test]
    fn energy_is_power_times_latency() {
        let power = PowerEstimate {
            static_w: 2.0,
            dynamic_w: 1.0,
            dram_w: 0.0,
        };
        assert!((inference_energy_uj(&power, 100.0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn vgg_configuration_is_cheaper_per_unit_than_lenet() {
        // The VGG deployment uses 3-row adder arrays (3x3 kernels), so each
        // convolution unit is smaller than LeNet's 5-row units.
        let lenet_unit = conv_unit_luts(&AcceleratorConfig::default());
        let vgg_unit = conv_unit_luts(&AcceleratorConfig::vgg11_table3());
        assert!(vgg_unit < lenet_unit);
    }
}
