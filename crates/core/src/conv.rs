//! The convolution unit (Fig. 2 of the paper).
//!
//! A convolution unit is a two-dimensional array of adders with `X` columns
//! (parallel output positions of one feature-map row) and `Y` rows (one per
//! kernel row, operated as pipeline stages).  The input logic fetches one
//! row of a *binary* input feature map — one time step of the radix-encoded
//! activations — into a shift register; taps spaced by the stride feed the
//! adder columns.  As the register shifts `Kc` times, each adder row steps
//! through its kernel row, accumulating the kernel value whenever the tap
//! carries a spike (a multiplexer forces zero otherwise).  Partial sums
//! stream from adder row to adder row; after `Kr` rows every column holds a
//! complete kernel-window sum, which the output logic accumulates over
//! input channels and — with a left shift per time step — over the radix
//! time steps (Alg. 1, line 12).
//!
//! # Bit-plane sparse execution model
//!
//! [`ConvolutionUnit::run_layer`] no longer steps that schedule cycle by
//! cycle.  It computes the *same* accumulators and the *same*
//! [`UnitStats`] two orders faster by splitting the work the schedule
//! interleaves:
//!
//! * **Compute** — conceptually the input levels are per-time-step binary
//!   planes of `u64` row words ([`snn_tensor::bitplane::BitPlanes`]).  By
//!   the radix shift-and-add identity, folding plane `t` with a left shift
//!   per step is algebraically identical to weighting each spiking pixel
//!   by its masked level (`level & level_mask(T)`), so the engine walks
//!   the OR-reduction of the planes (the occupancy mask, built directly in
//!   one pass by [`snn_tensor::bitplane::Occupancy::from_levels`]),
//!   skipping silent rows 64 pixels per word comparison, and scatters
//!   `kernel_value * level` into the output window of each spiking pixel.
//!   Plain `i64` arithmetic is commutative and wraps identically in any
//!   order, so the result is bit-identical to the cycle-stepped
//!   reference — including for out-of-range levels, which the mask
//!   truncates to exactly the bits the schedule would see.  Output
//!   channels are independent and run on parallel threads when the layer
//!   is large enough to amortise the spawns.
//! * **Statistics** — the schedule is static, so `cycles`,
//!   `activation_reads`, `kernel_reads` and `output_writes` follow in
//!   closed form from the loop bounds ([`ConvolutionUnit::layer_cycles`]
//!   and friends).  The data-dependent `adder_ops` is a one-pass
//!   popcount: each input pixel toggles one adder per set plane bit per
//!   covering `(output position, kernel tap)` pair, so
//!   `adder_ops = C_out * Σ_pixels popcount(level & mask) * coverage(pixel)`.
//!   Property tests assert both parts equal the counter-stepped values of
//!   [`crate::reference::ReferenceConvolutionUnit`] exactly.

use crate::config::ArrayGeometry;
use crate::memory::RowBand;
use crate::units::UnitStats;
use crate::{AccelError, Result};
use snn_tensor::{bitplane, ops, simd, Tensor};
use std::collections::HashMap;

/// Output of a convolution-unit layer execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvResult {
    /// Raw integer accumulators `[O, H_out, W_out]` (bias included, before
    /// ReLU/requantization).
    pub accumulators: Tensor<i64>,
    /// Cycle and operation counters.
    pub stats: UnitStats,
}

/// Bit-plane sparse model of one convolution unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvolutionUnit {
    geometry: ArrayGeometry,
    /// Spike density (spiking pixels per output-row width) at or above
    /// which a row uses the padded dense-row gather instead of the sparse
    /// scatter.  Never affects results, only host throughput; see
    /// [`crate::config::AcceleratorConfig::dense_gather_threshold`].
    dense_gather_threshold: f64,
    /// Enable the product-sparsity prepass (see
    /// [`crate::config::AcceleratorConfig::product_sparsity`]).
    product_sparsity: bool,
}

/// `(kernel index, output index)` pairs covering one input coordinate: all
/// `(k, o)` with `o * stride + k == input + padding` inside the valid
/// ranges.  Precomputed per row and per column so the scatter loop does no
/// bounds arithmetic per spike.
fn coverage_pairs(
    input_extent: usize,
    kernel_extent: usize,
    output_extent: usize,
    stride: usize,
    padding: usize,
) -> Vec<Vec<(usize, usize)>> {
    let mut pairs = vec![Vec::new(); input_extent];
    for o in 0..output_extent {
        for k in 0..kernel_extent {
            let i = (o * stride + k) as isize - padding as isize;
            if (0..input_extent as isize).contains(&i) {
                pairs[i as usize].push((k, o));
            }
        }
    }
    pairs
}

/// Band-local row coverage: for each input row of the band (indexed
/// relative to `band.in_lo`), the `(kernel row, band-local output row)`
/// pairs it feeds.  With a band spanning the whole layer this reduces to
/// [`coverage_pairs`] over the rows.
fn band_row_coverage(
    band: &RowBand,
    kernel_rows: usize,
    stride: usize,
    padding: usize,
) -> Vec<Vec<(usize, usize)>> {
    let mut pairs = vec![Vec::new(); band.in_rows()];
    for o in band.out_lo..band.out_hi {
        for k in 0..kernel_rows {
            let i = (o * stride + k) as isize - padding as isize;
            if i >= band.in_lo as isize && i < band.in_hi as isize {
                pairs[i as usize - band.in_lo].push((k, o - band.out_lo));
            }
        }
    }
    pairs
}

/// One classified non-silent input row of the compute pass.
struct SpikeRow {
    ic: usize,
    iy: usize,
    /// `(ix, masked level)` of each spiking pixel, ascending by `ix`
    /// (sparse rows always; dense rows only under product sparsity).
    spikes: Vec<(usize, i64)>,
    /// Masked level row with `padding` zeros on both sides (dense rows
    /// only; empty when the sparse path is chosen).
    padded: Vec<i64>,
    /// Use the dense gather path for this row.
    dense: bool,
}

/// Adds one row's contribution through one kernel row into `out_row`
/// (length `w_out`), choosing the representation the row was classified
/// for.  Every path adds exactly the terms `kernel x masked level`, so the
/// choice never changes the result (wrapping `i64` adds commute).
fn accumulate_row(
    out_row: &mut [i64],
    row: &SpikeRow,
    k_row: &[i64],
    x_pairs: &[Vec<(usize, usize)>],
    stride: usize,
) {
    let w_out = out_row.len();
    let kc = k_row.len();
    if row.dense {
        if stride == 1 {
            // k-major dense gather: tap `kx` contributes
            // `k_row[kx] * padded[kx..kx + w_out]` over contiguous output
            // positions — one SIMD axpy per tap.
            for (kx, &k) in k_row.iter().enumerate() {
                simd::axpy_i64(out_row, &row.padded[kx..kx + w_out], k);
            }
        } else {
            // Strided windows are not contiguous; dot each window.
            for (ox, o) in out_row.iter_mut().enumerate() {
                let window = &row.padded[ox * stride..ox * stride + kc];
                *o += simd::dot_i64(window, k_row);
            }
        }
    } else {
        // Sparse scatter from the spiking pixels only.
        for &(ix, level) in &row.spikes {
            for &(kx, ox) in &x_pairs[ix] {
                out_row[ox] += k_row[kx] * level;
            }
        }
    }
}

/// Per-row product-sparsity link (see [`build_ps_plan`]).
struct PsEntry {
    /// Index (into the spike-row list) of the row whose correlation
    /// vector this row reuses, when one was found.
    parent: Option<usize>,
    /// `(ix, masked level)` spikes of this row outside the parent's
    /// support, ascending by `ix`.
    diff: Vec<(usize, i64)>,
    /// Kernel rows for which reuse applies: this row's taps that the
    /// parent also computes (and therefore materializes).
    reuse_kys: Vec<usize>,
    /// Kernel rows whose correlation vector must be kept for children.
    materialize: Vec<usize>,
    /// Baseline adder work of computing this row fresh, per `(ky, oy)`
    /// event and output channel: `sum popcount(level) * |x_pairs[ix]|`.
    row_work: u64,
    /// Adder work of scattering only the difference spikes.
    diff_work: u64,
    /// Total set bits across the difference spikes' levels.
    diff_bits: u64,
}

/// Product-sparsity reuse plan for one band (Prosperity-style, applied to
/// level rows): within each input channel, a row **B** is a *parent* of a
/// row **A** when B's spike pattern is contained in A's with equal levels
/// on B's support — then A's per-tap correlation vector is B's plus the
/// scatter of the difference spikes, so A does `|diff|`-proportional work
/// instead of `|A|`-proportional.  Containment is checked word-level on
/// the occupancy rows first (`B & !A == 0`), then by one merge walk over
/// the sparse forms.  Links are greedy: rows sort by `(nnz, index)` and
/// each row adopts the largest earlier row that passes the check and the
/// benefit gate `diff_work + 2 * w_out < row_work` (one `w_out` for the
/// child's merge, one amortising the parent's).  The resulting `order`
/// processes parents before children, so vectors exist when reused.
struct PsPlan {
    /// Processing order over the spike rows (parents first).
    order: Vec<usize>,
    /// One entry per spike row, same indexing as the spike-row list.
    entries: Vec<PsEntry>,
}

/// Walks `child`'s spikes against `parent`'s (both ascending by position):
/// returns the spikes of `child` outside `parent`'s support when every
/// parent spike appears in `child` with an equal level, `None` otherwise.
fn containment_diff(parent: &[(usize, i64)], child: &[(usize, i64)]) -> Option<Vec<(usize, i64)>> {
    let mut diff = Vec::with_capacity(child.len().saturating_sub(parent.len()));
    let mut pi = 0;
    for &(ix, level) in child {
        if pi < parent.len() && parent[pi].0 == ix {
            if parent[pi].1 != level {
                return None;
            }
            pi += 1;
        } else {
            diff.push((ix, level));
        }
    }
    if pi == parent.len() {
        Some(diff)
    } else {
        None
    }
}

fn build_ps_plan(
    spike_rows: &[SpikeRow],
    occupancy: &bitplane::Occupancy,
    band_h: usize,
    y_pairs: &[Vec<(usize, usize)>],
    x_pairs: &[Vec<(usize, usize)>],
    w_out: usize,
) -> PsPlan {
    let work_of = |spikes: &[(usize, i64)]| -> (u64, u64) {
        let mut work = 0u64;
        let mut bits = 0u64;
        for &(ix, level) in spikes {
            let pop = u64::from(level.count_ones());
            bits += pop;
            work += pop * x_pairs[ix].len() as u64;
        }
        (work, bits)
    };
    let mut entries: Vec<PsEntry> = spike_rows
        .iter()
        .map(|row| {
            let (row_work, _) = work_of(&row.spikes);
            PsEntry {
                parent: None,
                diff: Vec::new(),
                reuse_kys: Vec::new(),
                materialize: Vec::new(),
                row_work,
                diff_work: 0,
                diff_bits: 0,
            }
        })
        .collect();
    let mut order = Vec::with_capacity(spike_rows.len());

    // Channel groups are contiguous: spike rows are built ic-major.
    let mut start = 0;
    while start < spike_rows.len() {
        let ic = spike_rows[start].ic;
        let mut end = start;
        while end < spike_rows.len() && spike_rows[end].ic == ic {
            end += 1;
        }
        // Parents-first order: ascending (nnz, index).
        let mut sorted: Vec<usize> = (start..end).collect();
        sorted.sort_by_key(|&j| (spike_rows[j].spikes.len(), j));
        for (s, &j) in sorted.iter().enumerate() {
            let child = &spike_rows[j];
            let child_words = occupancy.row(child.ic * band_h + child.iy);
            // Largest candidate first maximises the reused partial sum.
            for &p in sorted[..s].iter().rev() {
                let candidate = &spike_rows[p];
                let parent_words = occupancy.row(candidate.ic * band_h + candidate.iy);
                let contained = parent_words
                    .iter()
                    .zip(child_words)
                    .all(|(&pw, &cw)| pw & !cw == 0);
                if !contained {
                    continue;
                }
                let Some(diff) = containment_diff(&candidate.spikes, &child.spikes) else {
                    continue;
                };
                let (diff_work, diff_bits) = work_of(&diff);
                if diff_work + 2 * w_out as u64 >= entries[j].row_work {
                    continue; // reuse would not beat a fresh compute
                }
                let reuse_kys: Vec<usize> = y_pairs[child.iy]
                    .iter()
                    .map(|&(ky, _)| ky)
                    .filter(|&ky| y_pairs[candidate.iy].iter().any(|&(pky, _)| pky == ky))
                    .collect();
                if reuse_kys.is_empty() {
                    continue; // no shared tap: nothing to reuse
                }
                for &ky in &reuse_kys {
                    if !entries[p].materialize.contains(&ky) {
                        entries[p].materialize.push(ky);
                    }
                }
                entries[j].parent = Some(p);
                entries[j].diff = diff;
                entries[j].reuse_kys = reuse_kys;
                entries[j].diff_work = diff_work;
                entries[j].diff_bits = diff_bits;
                break;
            }
        }
        order.extend_from_slice(&sorted);
        start = end;
    }
    PsPlan { order, entries }
}

impl ConvolutionUnit {
    /// Creates a convolution unit with the given adder-array geometry and
    /// the default dense-gather threshold.
    pub fn new(geometry: ArrayGeometry) -> Self {
        Self::with_threshold(geometry, crate::config::DEFAULT_DENSE_GATHER_THRESHOLD)
    }

    /// Creates a convolution unit with an explicit dense-gather threshold
    /// (see [`crate::config::AcceleratorConfig::dense_gather_threshold`]).
    pub fn with_threshold(geometry: ArrayGeometry, dense_gather_threshold: f64) -> Self {
        Self::with_options(geometry, dense_gather_threshold, false)
    }

    /// Creates a convolution unit with every execution knob explicit:
    /// dense-gather threshold and the product-sparsity prepass.
    pub fn with_options(
        geometry: ArrayGeometry,
        dense_gather_threshold: f64,
        product_sparsity: bool,
    ) -> Self {
        ConvolutionUnit {
            geometry,
            dense_gather_threshold,
            product_sparsity,
        }
    }

    /// The adder-array geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// The configured dense-gather density threshold.
    pub fn dense_gather_threshold(&self) -> f64 {
        self.dense_gather_threshold
    }

    /// Whether the product-sparsity prepass is enabled.
    pub fn product_sparsity(&self) -> bool {
        self.product_sparsity
    }

    /// Number of column tiles needed for an output row of `width` values.
    ///
    /// The paper chooses `X` at least as large as the widest output row to
    /// avoid tiling; the model supports tiling so narrower units still work.
    pub fn column_tiles(&self, width: usize) -> usize {
        width.div_ceil(self.geometry.columns)
    }

    /// Executes one convolution layer on this unit.
    ///
    /// * `input_levels` — `[C, H, W]` radix levels of the input activations
    ///   (each level's binary expansion is the spike train, MSB first).
    /// * `kernel_codes` — `[O, C, K, K]` quantized kernel codes.
    /// * `bias_acc` — `[O]` biases pre-scaled to accumulator units.
    /// * `time_steps` — spike-train length `T`.
    ///
    /// Returns raw accumulators plus exact cycle/operation counts for the
    /// *whole* layer executed on a single unit; the controller divides the
    /// output channels across units to obtain the wall-clock latency.  The
    /// accumulators and counters are bit-identical to the counter-stepped
    /// [`crate::reference::ReferenceConvolutionUnit`] (see the module docs
    /// for the execution model).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnsupportedLayer`] when the kernel has more
    /// rows than the adder array or `time_steps` exceeds the 63 payload
    /// bits of an `i64` level, and propagates shape errors.
    pub fn run_layer(
        &self,
        input_levels: &Tensor<i64>,
        kernel_codes: &Tensor<i64>,
        bias_acc: &Tensor<i64>,
        time_steps: usize,
        stride: usize,
        padding: usize,
    ) -> Result<ConvResult> {
        let in_dims = input_levels.shape().dims();
        let k_dims = kernel_codes.shape().dims();
        if in_dims.len() != 3 || k_dims.len() != 4 {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: "convolution unit expects [C,H,W] inputs and [O,C,K,K] kernels"
                    .to_string(),
            });
        }
        let (h, w) = (in_dims[1], in_dims[2]);
        let (kr, kc) = (k_dims[2], k_dims[3]);
        let (h_out, _w_out) = ops::conv2d_output_dims((h, w), (kr, kc), stride, padding)
            .map_err(AccelError::Tensor)?;
        self.run_layer_band(
            input_levels,
            kernel_codes,
            bias_acc,
            time_steps,
            stride,
            padding,
            &RowBand {
                out_lo: 0,
                out_hi: h_out,
                in_lo: 0,
                in_hi: h,
            },
        )
    }

    /// Executes one **row-band tile** of a convolution layer.
    ///
    /// `band_levels` holds only the halo-extended input rows
    /// `band.in_lo..band.in_hi` of the full feature map (all channels,
    /// `[C, band.in_rows(), W]`); the result covers output rows
    /// `band.out_lo..band.out_hi` (`[O, band.out_rows(), W_out]`).  The
    /// bit planes are packed per tile, so only the band is ever resident —
    /// this is the compute kernel of the tiled activation-buffer model
    /// ([`crate::memory::plan_network_tiles`]).
    ///
    /// **Exactness contract:** accumulators are the same integer sums as
    /// the untiled layer restricted to the band, and every counter is
    /// defined so that summing over a partition of the output rows
    /// reproduces [`ConvolutionUnit::run_layer`]'s counters bit-exactly;
    /// the schedule's per-pass pipeline-fill cycles are charged to the
    /// band containing output row zero.  Property tests pin both.
    ///
    /// **Caller contract on `in_hi`:** the unit does not know the full
    /// image height, so it treats `band.in_hi` as the bottom of the
    /// available data — input rows at or beyond `in_hi` contribute
    /// nothing, exactly as rows beyond the image do.  It therefore cannot
    /// detect a band whose `in_hi` stops short of rows that *do* exist in
    /// the full map; supplying one silently drops their contributions.
    /// Bands produced by [`crate::memory::plan_network_tiles`] always
    /// extend `in_hi` to `min(needed, H)` and are safe; hand-built bands
    /// must do the same.
    ///
    /// # Errors
    ///
    /// As [`ConvolutionUnit::run_layer`], plus
    /// [`AccelError::UnsupportedLayer`] when `band_levels` does not match
    /// the band's row count, the band is empty, or the band's input rows
    /// start later than its first output row reads (the start is
    /// checkable without the image height; the end is not — see the
    /// caller contract above).
    #[allow(clippy::too_many_arguments)]
    pub fn run_layer_band(
        &self,
        band_levels: &Tensor<i64>,
        kernel_codes: &Tensor<i64>,
        bias_acc: &Tensor<i64>,
        time_steps: usize,
        stride: usize,
        padding: usize,
        band: &RowBand,
    ) -> Result<ConvResult> {
        let in_dims = band_levels.shape().dims();
        let k_dims = kernel_codes.shape().dims();
        if in_dims.len() != 3 || k_dims.len() != 4 {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: "convolution unit expects [C,H,W] inputs and [O,C,K,K] kernels"
                    .to_string(),
            });
        }
        let (c_in, band_h, w) = (in_dims[0], in_dims[1], in_dims[2]);
        let (c_out, kc_in, kr, kc) = (k_dims[0], k_dims[1], k_dims[2], k_dims[3]);
        if kc_in != c_in {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!("kernel expects {kc_in} channels, input has {c_in}"),
            });
        }
        if kr > self.geometry.rows {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "kernel has {kr} rows but the adder array only has {} rows",
                    self.geometry.rows
                ),
            });
        }
        if time_steps > 63 {
            // An i64 level can only carry 63 payload bits; beyond that the
            // bit-plane engine and the shift-stepped reference would no
            // longer agree (the reference hits the sign bit at T = 64).
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "spike trains of {time_steps} steps exceed the 63-bit level payload"
                ),
            });
        }
        if band.out_hi <= band.out_lo || band.in_hi <= band.in_lo {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "degenerate row band (out {}..{}, in {}..{})",
                    band.out_lo, band.out_hi, band.in_lo, band.in_hi
                ),
            });
        }
        if band.in_rows() != band_h {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "band tensor has {band_h} input rows but the band spans {}..{}",
                    band.in_lo, band.in_hi
                ),
            });
        }
        if band.in_lo > (band.out_lo * stride).saturating_sub(padding) {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "band input starts at row {} but output row {} reads from row {}",
                    band.in_lo,
                    band.out_lo,
                    (band.out_lo * stride).saturating_sub(padding)
                ),
            });
        }
        if w + 2 * padding < kc {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!("kernel of {kc} columns does not fit a padded width of {w}"),
            });
        }
        let w_out = (w + 2 * padding - kc) / stride.max(1) + 1;
        let out_h = band.out_rows();

        let in_data = band_levels.as_slice();
        let k_data = kernel_codes.as_slice();
        let mask = bitplane::level_mask(time_steps);

        // Which (kernel tap, output position) pairs each input coordinate
        // feeds — shared by the statistics and the scatter loop.  Row
        // coverage is band-local; column coverage spans the full width.
        let y_pairs = band_row_coverage(band, kr, stride, padding);
        let x_pairs = coverage_pairs(w, kc, w_out, stride, padding);

        // --- Statistics: closed-form schedule counts plus one popcount
        // pass for the data-dependent adder activity. ---
        let mut spike_work = 0u64; // adder ops of ONE output channel
        for ic in 0..c_in {
            for (iy, pairs_y) in y_pairs.iter().enumerate() {
                if pairs_y.is_empty() {
                    continue;
                }
                let row = &in_data[ic * band_h * w + iy * w..ic * band_h * w + iy * w + w];
                let row_work: u64 = row
                    .iter()
                    .zip(&x_pairs)
                    .map(|(&level, pairs_x)| {
                        u64::from((level & mask).count_ones()) * pairs_x.len() as u64
                    })
                    .sum();
                spike_work += pairs_y.len() as u64 * row_work;
            }
        }
        let mut stats = self.derived_stats(
            c_in,
            c_out,
            out_h,
            w_out,
            kr,
            kc,
            time_steps,
            spike_work,
            band.is_first(),
        );

        // --- Compute: build the planes' OR-reduction (occupancy) in one
        // pass, classify each non-silent row once (shared by every output
        // channel), then accumulate one output channel per chunk.  Rows
        // with few spikes use a scatter over the occupancy's set bits;
        // saturated rows use a register-accumulated gather over a
        // zero-padded copy of the masked level row, which avoids the
        // store-to-load dependency chains scatter suffers when nearly
        // every pixel spikes.  Both paths add exactly the terms
        // `kernel x masked level`, so the choice never changes the result.
        let occupancy = bitplane::Occupancy::from_levels(in_data, c_in * band_h, w, time_steps);
        let mut spike_rows: Vec<SpikeRow> = Vec::new();
        let mut positions: Vec<u32> = Vec::new();
        for ic in 0..c_in {
            for (iy, pairs_y) in y_pairs.iter().enumerate() {
                let row_words = occupancy.row(ic * band_h + iy);
                let spike_count = simd::popcount(row_words) as usize;
                if pairs_y.is_empty() || spike_count == 0 {
                    continue; // word-level skip of silent rows
                }
                // Build only the representation the chosen path reads; the
                // product-sparsity prepass compares rows by their
                // `(position, level)` patterns, so it needs the sparse form
                // even when the dense path computes the row.
                let row_base = ic * band_h * w + iy * w;
                let dense = spike_count as f64 >= self.dense_gather_threshold * w_out as f64;
                positions.clear();
                simd::collect_set_bits(row_words, 0, &mut positions);
                let mut spikes = Vec::new();
                let mut padded = Vec::new();
                if dense {
                    padded = vec![0i64; w + 2 * padding];
                    for &ix in &positions {
                        padded[padding + ix as usize] = in_data[row_base + ix as usize] & mask;
                    }
                }
                if !dense || self.product_sparsity {
                    spikes.reserve(spike_count);
                    for &ix in &positions {
                        spikes.push((ix as usize, in_data[row_base + ix as usize] & mask));
                    }
                }
                spike_rows.push(SpikeRow {
                    ic,
                    iy,
                    spikes,
                    padded,
                    dense,
                });
            }
        }

        // --- Product-sparsity prepass: link rows whose pattern contains
        // another row's pattern, so children reuse the parent's per-tap
        // correlation vector and only scatter the difference bits.  The
        // plan depends only on the input, so it is shared by every output
        // channel; `adder_ops` is re-derived to mirror the reduced work
        // while the schedule counters keep the baseline static schedule.
        let ps_plan = if self.product_sparsity {
            let plan = build_ps_plan(&spike_rows, &occupancy, band_h, &y_pairs, &x_pairs, w_out);
            let mut ps_spike_work = 0u64;
            let mut reuse_events = 0u64;
            let mut diff_bits = 0u64;
            for (j, row) in spike_rows.iter().enumerate() {
                let entry = &plan.entries[j];
                for &(ky, _oy) in &y_pairs[row.iy] {
                    if entry.reuse_kys.contains(&ky) {
                        ps_spike_work += w_out as u64 + entry.diff_work;
                        reuse_events += 1;
                        diff_bits += entry.diff_bits;
                    } else {
                        ps_spike_work += entry.row_work;
                        if entry.materialize.contains(&ky) {
                            ps_spike_work += w_out as u64;
                        }
                    }
                }
            }
            stats.adder_ops = c_out as u64 * ps_spike_work;
            stats.reused_partials = c_out as u64 * reuse_events;
            stats.difference_bits = c_out as u64 * diff_bits;
            Some(plan)
        } else {
            None
        };
        let order: Vec<usize> = match &ps_plan {
            Some(plan) => plan.order.clone(),
            None => (0..spike_rows.len()).collect(),
        };

        let mut accumulators = Tensor::filled(vec![c_out, out_h, w_out], 0i64);
        let plane_len = out_h * w_out;
        let threads = if stats.adder_ops >= snn_parallel::MIN_PARALLEL_WORK {
            snn_parallel::default_threads().min(c_out)
        } else {
            1
        };
        let bias_data = bias_acc.as_slice();
        let spike_rows = &spike_rows;
        let ps_plan = &ps_plan;
        let order = &order;
        let x_pairs = &x_pairs;
        snn_parallel::par_chunks_mut(
            accumulators.as_mut_slice(),
            plane_len,
            threads,
            |oc, out| {
                // Correlation vectors kept for this channel's children,
                // keyed by `(spike row index, kernel row)`.
                let mut kept: HashMap<(usize, usize), Vec<i64>> = HashMap::new();
                for &j in order {
                    let row = &spike_rows[j];
                    let entry = ps_plan.as_ref().map(|plan| &plan.entries[j]);
                    for &(ky, oy) in &y_pairs[row.iy] {
                        let k_base = ((oc * c_in + row.ic) * kr + ky) * kc;
                        let k_row = &k_data[k_base..k_base + kc];
                        let out_row = &mut out[oy * w_out..(oy + 1) * w_out];
                        match entry {
                            Some(e) if e.reuse_kys.contains(&ky) => {
                                // Child: parent's vector + difference bits.
                                let parent = e.parent.expect("reuse implies a parent");
                                let mut v = kept
                                    .get(&(parent, ky))
                                    .expect("plan order puts parents first")
                                    .clone();
                                for &(ix, level) in &e.diff {
                                    for &(kx, ox) in &x_pairs[ix] {
                                        v[ox] += k_row[kx] * level;
                                    }
                                }
                                simd::axpy_i64(out_row, &v, 1);
                                if e.materialize.contains(&ky) {
                                    kept.insert((j, ky), v);
                                }
                            }
                            Some(e) if e.materialize.contains(&ky) => {
                                // Parent: compute once into a scratch
                                // vector, merge it, keep it for children.
                                let mut v = vec![0i64; w_out];
                                accumulate_row(&mut v, row, k_row, x_pairs, stride);
                                simd::axpy_i64(out_row, &v, 1);
                                kept.insert((j, ky), v);
                            }
                            _ => accumulate_row(out_row, row, k_row, x_pairs, stride),
                        }
                    }
                }
                let bias = bias_data.get(oc).copied().unwrap_or(0);
                for v in out.iter_mut() {
                    *v += bias;
                }
            },
        );

        Ok(ConvResult {
            accumulators,
            stats,
        })
    }

    /// Row slots of the static schedule: one per `(output row, tile,
    /// kernel row)` triple — a row load each, plus `kc` shift cycles.
    fn row_slots(&self, h_out: usize, w_out: usize, kr: usize) -> u64 {
        (h_out as u64) * self.column_tiles(w_out) as u64 * kr as u64
    }

    /// The single source of the closed-form cycle expression, shared by
    /// [`ConvolutionUnit::layer_cycles`] and the derived counters so the
    /// analytical timing model can never drift from the unit's reports.
    /// For a row band, `first_band` controls whether the per-pass pipeline
    /// fill is charged — it belongs to exactly one band per layer, so the
    /// band cycle counts sum to the untiled expression.
    #[allow(clippy::too_many_arguments)]
    fn schedule_cycles(
        &self,
        c_in: usize,
        c_out: usize,
        h_out: usize,
        w_out: usize,
        kr: usize,
        kc: usize,
        time_steps: usize,
        first_band: bool,
    ) -> u64 {
        let passes = (c_out * time_steps * c_in) as u64;
        let fill = if first_band { kr as u64 } else { 0 };
        // Per channel pass: pipeline fill + (1 load + Kc shifts) per slot.
        passes * (fill + self.row_slots(h_out, w_out, kr) * (1 + kc as u64))
    }

    /// The full analytically derived counter set for one layer (or band)
    /// execution: closed-form schedule counts plus the externally computed
    /// per-channel adder activity (`spike_work`).
    #[allow(clippy::too_many_arguments)]
    fn derived_stats(
        &self,
        c_in: usize,
        c_out: usize,
        h_out: usize,
        w_out: usize,
        kr: usize,
        kc: usize,
        time_steps: usize,
        spike_work: u64,
        first_band: bool,
    ) -> UnitStats {
        let passes = (c_out * time_steps * c_in) as u64;
        let row_slots = self.row_slots(h_out, w_out, kr);
        UnitStats {
            cycles: self.schedule_cycles(c_in, c_out, h_out, w_out, kr, kc, time_steps, first_band),
            adder_ops: c_out as u64 * spike_work,
            activation_reads: passes * row_slots,
            kernel_reads: passes * row_slots * kc as u64,
            output_writes: (c_out * h_out * w_out) as u64,
            ..UnitStats::default()
        }
    }

    /// Closed-form cycle count of [`ConvolutionUnit::run_layer`] for a
    /// square-kernel layer with the given dimensions — the formula the
    /// analytical timing model uses, and (being the very expression the
    /// engine derives its counters from) exactly the value reported in
    /// [`ConvResult::stats`].
    pub fn layer_cycles(
        &self,
        c_in: usize,
        c_out: usize,
        h_out: usize,
        w_out: usize,
        kernel: usize,
        time_steps: usize,
    ) -> u64 {
        self.schedule_cycles(c_in, c_out, h_out, w_out, kernel, kernel, time_steps, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceConvolutionUnit;
    use snn_tensor::ops;

    fn unit(x: usize, y: usize) -> ConvolutionUnit {
        ConvolutionUnit::new(ArrayGeometry {
            columns: x,
            rows: y,
        })
    }

    fn reference(
        input: &Tensor<i64>,
        kernel: &Tensor<i64>,
        bias: &Tensor<i64>,
        stride: usize,
        padding: usize,
    ) -> Tensor<i64> {
        let acc = ops::conv2d(input, kernel, None, stride, padding).unwrap();
        let dims = acc.shape().dims().to_vec();
        let (o, hw) = (dims[0], dims[1] * dims[2]);
        let mut out = acc.clone();
        for oc in 0..o {
            for i in 0..hw {
                out.as_mut_slice()[oc * hw + i] += bias.as_slice()[oc];
            }
        }
        out
    }

    #[test]
    fn matches_reference_convolution_bit_exactly() {
        let input =
            Tensor::from_vec(vec![2, 5, 5], (0..50).map(|v| (v * 7 % 8) as i64).collect()).unwrap();
        let kernel = Tensor::from_vec(
            vec![3, 2, 3, 3],
            (0..54).map(|v| ((v % 7) as i64) - 3).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(vec![3], vec![5i64, -2, 0]).unwrap();
        let result = unit(8, 3)
            .run_layer(&input, &kernel, &bias, 3, 1, 0)
            .unwrap();
        let expected = reference(&input, &kernel, &bias, 1, 0);
        assert_eq!(result.accumulators, expected);
    }

    #[test]
    fn matches_reference_with_padding_and_stride() {
        let input =
            Tensor::from_vec(vec![1, 6, 6], (0..36).map(|v| (v % 4) as i64).collect()).unwrap();
        let kernel = Tensor::from_vec(
            vec![2, 1, 3, 3],
            (0..18).map(|v| ((v % 5) as i64) - 2).collect(),
        )
        .unwrap();
        let bias = Tensor::filled(vec![2], 1i64);
        let result = unit(4, 3)
            .run_layer(&input, &kernel, &bias, 2, 2, 1)
            .unwrap();
        let expected = reference(&input, &kernel, &bias, 2, 1);
        assert_eq!(result.accumulators, expected);
    }

    #[test]
    fn column_tiling_does_not_change_results() {
        let input =
            Tensor::from_vec(vec![1, 5, 9], (0..45).map(|v| (v % 3) as i64).collect()).unwrap();
        let kernel = Tensor::from_vec(vec![1, 1, 3, 3], vec![1i64; 9]).unwrap();
        let bias = Tensor::filled(vec![1], 0i64);
        // Wide unit (no tiling) vs narrow unit (tiling) must agree.
        let wide = unit(16, 3)
            .run_layer(&input, &kernel, &bias, 2, 1, 0)
            .unwrap();
        let narrow = unit(2, 3)
            .run_layer(&input, &kernel, &bias, 2, 1, 0)
            .unwrap();
        assert_eq!(wide.accumulators, narrow.accumulators);
    }

    #[test]
    fn silent_input_uses_no_adders() {
        let input = Tensor::filled(vec![1, 4, 4], 0i64);
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 3i64);
        let bias = Tensor::filled(vec![1], 0i64);
        let result = unit(4, 3)
            .run_layer(&input, &kernel, &bias, 4, 1, 0)
            .unwrap();
        assert_eq!(result.stats.adder_ops, 0);
        assert!(result.accumulators.iter().all(|&v| v == 0));
        // Cycles are still consumed: the schedule is input-independent.
        assert!(result.stats.cycles > 0);
    }

    #[test]
    fn denser_spike_trains_cost_more_adder_operations() {
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 1i64);
        let bias = Tensor::filled(vec![1], 0i64);
        let sparse = Tensor::filled(vec![1, 4, 4], 1i64); // one spike (LSB)
        let dense = Tensor::filled(vec![1, 4, 4], 7i64); // three spikes
        let u = unit(4, 3);
        let sparse_ops = u
            .run_layer(&sparse, &kernel, &bias, 3, 1, 0)
            .unwrap()
            .stats
            .adder_ops;
        let dense_ops = u
            .run_layer(&dense, &kernel, &bias, 3, 1, 0)
            .unwrap()
            .stats
            .adder_ops;
        assert_eq!(dense_ops, 3 * sparse_ops);
    }

    #[test]
    fn cycle_count_matches_closed_form() {
        let input =
            Tensor::from_vec(vec![3, 6, 6], (0..108).map(|v| (v % 8) as i64).collect()).unwrap();
        let kernel = Tensor::filled(vec![4, 3, 3, 3], 1i64);
        let bias = Tensor::filled(vec![4], 0i64);
        let u = unit(2, 3);
        let result = u.run_layer(&input, &kernel, &bias, 5, 1, 0).unwrap();
        let expected = u.layer_cycles(3, 4, 4, 4, 3, 5);
        assert_eq!(result.stats.cycles, expected);
    }

    #[test]
    fn cycles_scale_linearly_with_time_steps() {
        let input = Tensor::filled(vec![1, 5, 5], 3i64);
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 1i64);
        let bias = Tensor::filled(vec![1], 0i64);
        let u = unit(3, 3);
        let c3 = u
            .run_layer(&input, &kernel, &bias, 3, 1, 0)
            .unwrap()
            .stats
            .cycles;
        let c6 = u
            .run_layer(&input, &kernel, &bias, 6, 1, 0)
            .unwrap()
            .stats
            .cycles;
        assert_eq!(c6, 2 * c3);
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let input = Tensor::filled(vec![1, 8, 8], 1i64);
        let kernel = Tensor::filled(vec![1, 1, 5, 5], 1i64);
        let bias = Tensor::filled(vec![1], 0i64);
        // Only 3 adder rows — a 5-row kernel cannot be mapped.
        let err = unit(8, 3)
            .run_layer(&input, &kernel, &bias, 3, 1, 0)
            .unwrap_err();
        assert!(matches!(err, AccelError::UnsupportedLayer { .. }));
    }

    #[test]
    fn overlong_spike_trains_are_rejected() {
        let input = Tensor::filled(vec![1, 4, 4], 1i64);
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 1i64);
        let bias = Tensor::filled(vec![1], 0i64);
        let u = unit(4, 3);
        assert!(u.run_layer(&input, &kernel, &bias, 63, 1, 0).is_ok());
        assert!(matches!(
            u.run_layer(&input, &kernel, &bias, 64, 1, 0),
            Err(AccelError::UnsupportedLayer { .. })
        ));
    }

    #[test]
    fn dense_gather_threshold_never_changes_results() {
        // Force always-dense (0.0) and always-sparse (above any density)
        // path selection: accumulators and stats must match the default
        // exactly — the threshold is a host-throughput knob only.
        let input = Tensor::from_vec(
            vec![2, 6, 6],
            (0..72).map(|v| ((v * 5) % 8) as i64).collect(),
        )
        .unwrap();
        let kernel = Tensor::from_vec(
            vec![3, 2, 3, 3],
            (0..54).map(|v| ((v % 7) as i64) - 3).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(vec![3], vec![1i64, -2, 0]).unwrap();
        let geometry = ArrayGeometry {
            columns: 6,
            rows: 3,
        };
        let default = ConvolutionUnit::new(geometry)
            .run_layer(&input, &kernel, &bias, 3, 1, 1)
            .unwrap();
        for threshold in [0.0, 0.25, 2.0, 1.0e6] {
            let tuned = ConvolutionUnit::with_threshold(geometry, threshold)
                .run_layer(&input, &kernel, &bias, 3, 1, 1)
                .unwrap();
            assert_eq!(tuned.accumulators, default.accumulators, "thr={threshold}");
            assert_eq!(tuned.stats, default.stats, "thr={threshold}");
        }
    }

    #[test]
    fn row_bands_sum_to_the_untiled_layer() {
        use crate::memory::RowBand;
        let input = Tensor::from_vec(
            vec![2, 9, 7],
            (0..2 * 9 * 7).map(|v| ((v * 11) % 16) as i64).collect(),
        )
        .unwrap();
        let kernel = Tensor::from_vec(
            vec![3, 2, 3, 3],
            (0..54).map(|v| ((v % 7) as i64) - 3).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(vec![3], vec![2i64, -1, 4]).unwrap();
        let u = unit(4, 3);
        for (stride, padding, t, rows) in [(1, 0, 4, 2), (2, 1, 3, 1), (1, 2, 5, 3), (3, 0, 2, 1)] {
            let whole = u
                .run_layer(&input, &kernel, &bias, t, stride, padding)
                .unwrap();
            let dims = whole.accumulators.shape().dims().to_vec();
            let (h_out, w_out) = (dims[1], dims[2]);
            let h = input.shape().dims()[1];
            let mut summed = UnitStats::default();
            let mut stitched = Tensor::filled(dims.clone(), 0i64);
            for lo in (0..h_out).step_by(rows) {
                let hi = (lo + rows).min(h_out);
                let in_lo = (lo * stride).saturating_sub(padding);
                let in_hi = ((hi - 1) * stride + 3).saturating_sub(padding).min(h);
                let band = RowBand {
                    out_lo: lo,
                    out_hi: hi,
                    in_lo,
                    in_hi,
                };
                // Gather the halo-extended input band.
                let mut band_data = Vec::new();
                for c in 0..2 {
                    band_data.extend_from_slice(
                        &input.as_slice()[c * h * 7 + in_lo * 7..c * h * 7 + in_hi * 7],
                    );
                }
                let band_input = Tensor::from_vec(vec![2, in_hi - in_lo, 7], band_data).unwrap();
                let part = u
                    .run_layer_band(&band_input, &kernel, &bias, t, stride, padding, &band)
                    .unwrap();
                summed += part.stats;
                for oc in 0..dims[0] {
                    let src = part.accumulators.as_slice();
                    let dst = stitched.as_mut_slice();
                    let bh = hi - lo;
                    dst[oc * h_out * w_out + lo * w_out..oc * h_out * w_out + hi * w_out]
                        .copy_from_slice(&src[oc * bh * w_out..(oc + 1) * bh * w_out]);
                }
            }
            assert_eq!(stitched, whole.accumulators, "s={stride} p={padding} t={t}");
            assert_eq!(summed, whole.stats, "s={stride} p={padding} t={t}");
        }
    }

    #[test]
    fn radix_weighting_is_applied_msb_first() {
        // Single 1x1 kernel of weight 1: the accumulator must equal the
        // input level itself, demonstrating the left-shift accumulation.
        let input = Tensor::from_vec(vec![1, 1, 2], vec![5i64, 3]).unwrap();
        let kernel = Tensor::from_vec(vec![1, 1, 1, 1], vec![1i64]).unwrap();
        let bias = Tensor::filled(vec![1], 0i64);
        let result = unit(2, 1)
            .run_layer(&input, &kernel, &bias, 3, 1, 0)
            .unwrap();
        assert_eq!(result.accumulators.as_slice(), &[5, 3]);
    }

    #[test]
    fn out_of_range_levels_are_truncated_like_the_schedule() {
        // A level above 2^T - 1 only contributes its T low bits in the
        // cycle-stepped schedule; the sparse engine must mask identically.
        let input = Tensor::from_vec(vec![1, 2, 2], vec![9i64, -1, 4, 3]).unwrap();
        let kernel = Tensor::filled(vec![1, 1, 2, 2], 2i64);
        let bias = Tensor::filled(vec![1], 1i64);
        let u = unit(4, 2);
        let fast = u.run_layer(&input, &kernel, &bias, 2, 1, 0).unwrap();
        let slow = ReferenceConvolutionUnit::new(u.geometry())
            .run_layer(&input, &kernel, &bias, 2, 1, 0)
            .unwrap();
        assert_eq!(fast.accumulators, slow.accumulators);
        assert_eq!(fast.stats, slow.stats);
    }

    #[test]
    fn stats_and_accumulators_match_the_reference_unit() {
        let input = Tensor::from_vec(
            vec![2, 7, 7],
            (0..98).map(|v| ((v * 13) % 16) as i64).collect(),
        )
        .unwrap();
        let kernel = Tensor::from_vec(
            vec![3, 2, 3, 3],
            (0..54).map(|v| ((v % 7) as i64) - 3).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(vec![3], vec![2i64, -1, 4]).unwrap();
        for (stride, padding, t) in [(1, 0, 4), (2, 1, 3), (1, 2, 5), (3, 0, 1)] {
            let u = unit(4, 3);
            let fast = u
                .run_layer(&input, &kernel, &bias, t, stride, padding)
                .unwrap();
            let slow = ReferenceConvolutionUnit::new(u.geometry())
                .run_layer(&input, &kernel, &bias, t, stride, padding)
                .unwrap();
            assert_eq!(
                fast.accumulators, slow.accumulators,
                "s={stride} p={padding} t={t}"
            );
            assert_eq!(fast.stats, slow.stats, "s={stride} p={padding} t={t}");
        }
    }
}
