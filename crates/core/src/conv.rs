//! The convolution unit (Fig. 2 of the paper).
//!
//! A convolution unit is a two-dimensional array of adders with `X` columns
//! (parallel output positions of one feature-map row) and `Y` rows (one per
//! kernel row, operated as pipeline stages).  The input logic fetches one
//! row of a *binary* input feature map — one time step of the radix-encoded
//! activations — into a shift register; taps spaced by the stride feed the
//! adder columns.  As the register shifts `Kc` times, each adder row steps
//! through its kernel row, accumulating the kernel value whenever the tap
//! carries a spike (a multiplexer forces zero otherwise).  Partial sums
//! stream from adder row to adder row; after `Kr` rows every column holds a
//! complete kernel-window sum, which the output logic accumulates over
//! input channels and — with a left shift per time step — over the radix
//! time steps (Alg. 1, line 12).
//!
//! [`ConvolutionUnit::run_layer`] executes this schedule cycle by cycle and
//! is verified bit-exactly against the integer reference convolution.

use crate::config::ArrayGeometry;
use crate::units::UnitStats;
use crate::{AccelError, Result};
use snn_tensor::{ops, Tensor};

/// Output of a convolution-unit layer execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvResult {
    /// Raw integer accumulators `[O, H_out, W_out]` (bias included, before
    /// ReLU/requantization).
    pub accumulators: Tensor<i64>,
    /// Cycle and operation counters.
    pub stats: UnitStats,
}

/// Cycle-stepped model of one convolution unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvolutionUnit {
    geometry: ArrayGeometry,
}

impl ConvolutionUnit {
    /// Creates a convolution unit with the given adder-array geometry.
    pub fn new(geometry: ArrayGeometry) -> Self {
        ConvolutionUnit { geometry }
    }

    /// The adder-array geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Number of column tiles needed for an output row of `width` values.
    ///
    /// The paper chooses `X` at least as large as the widest output row to
    /// avoid tiling; the model supports tiling so narrower units still work.
    pub fn column_tiles(&self, width: usize) -> usize {
        width.div_ceil(self.geometry.columns)
    }

    /// Executes one convolution layer on this unit, cycle by cycle.
    ///
    /// * `input_levels` — `[C, H, W]` radix levels of the input activations
    ///   (each level's binary expansion is the spike train, MSB first).
    /// * `kernel_codes` — `[O, C, K, K]` quantized kernel codes.
    /// * `bias_acc` — `[O]` biases pre-scaled to accumulator units.
    /// * `time_steps` — spike-train length `T`.
    ///
    /// Returns raw accumulators plus exact cycle/operation counts for the
    /// *whole* layer executed on a single unit; the controller divides the
    /// output channels across units to obtain the wall-clock latency.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnsupportedLayer`] when the kernel has more
    /// rows than the adder array, and propagates shape errors.
    pub fn run_layer(
        &self,
        input_levels: &Tensor<i64>,
        kernel_codes: &Tensor<i64>,
        bias_acc: &Tensor<i64>,
        time_steps: usize,
        stride: usize,
        padding: usize,
    ) -> Result<ConvResult> {
        let in_dims = input_levels.shape().dims();
        let k_dims = kernel_codes.shape().dims();
        if in_dims.len() != 3 || k_dims.len() != 4 {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: "convolution unit expects [C,H,W] inputs and [O,C,K,K] kernels"
                    .to_string(),
            });
        }
        let (c_in, h, w) = (in_dims[0], in_dims[1], in_dims[2]);
        let (c_out, kc_in, kr, kc) = (k_dims[0], k_dims[1], k_dims[2], k_dims[3]);
        if kc_in != c_in {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!("kernel expects {kc_in} channels, input has {c_in}"),
            });
        }
        if kr > self.geometry.rows {
            return Err(AccelError::UnsupportedLayer {
                layer: 0,
                context: format!(
                    "kernel has {kr} rows but the adder array only has {} rows",
                    self.geometry.rows
                ),
            });
        }
        let (h_out, w_out) = ops::conv2d_output_dims((h, w), (kr, kc), stride, padding)
            .map_err(AccelError::Tensor)?;

        let mut accumulators = Tensor::filled(vec![c_out, h_out, w_out], 0i64);
        let mut stats = UnitStats::new();
        let in_data = input_levels.as_slice();
        let k_data = kernel_codes.as_slice();
        let tiles = self.column_tiles(w_out);

        for oc in 0..c_out {
            // Time-step accumulators for this output channel (the output
            // logic's registers).
            let mut channel_acc = vec![0i64; h_out * w_out];
            for t in 0..time_steps {
                // Spike plane bit for this time step: MSB first.
                let bit = time_steps - 1 - t;
                let mut step_sum = vec![0i64; h_out * w_out];
                for ic in 0..c_in {
                    // Pipeline fill for this channel pass.
                    stats.cycles += kr as u64;
                    for oy in 0..h_out {
                        for tile in 0..tiles {
                            let col_start = tile * self.geometry.columns;
                            let col_end = (col_start + self.geometry.columns).min(w_out);
                            // The input logic fetches one input row per
                            // kernel row into the shift register.
                            for ky in 0..kr {
                                let iy = (oy * stride + ky) as isize - padding as isize;
                                stats.activation_reads += 1;
                                stats.cycles += 1; // row load into the shift register
                                for kx in 0..kc {
                                    // One shift of the input register and one
                                    // kernel value broadcast per cycle.
                                    let kernel_value =
                                        k_data[oc * c_in * kr * kc + ic * kr * kc + ky * kc + kx];
                                    stats.kernel_reads += 1;
                                    stats.cycles += 1;
                                    if iy < 0 || iy >= h as isize {
                                        continue; // padding row: all taps silent
                                    }
                                    for (lane, ox) in (col_start..col_end).enumerate() {
                                        let _ = lane;
                                        let ix =
                                            (ox * stride + kx) as isize - padding as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue; // padding column
                                        }
                                        let level = in_data
                                            [ic * h * w + iy as usize * w + ix as usize];
                                        let spike = (level >> bit) & 1 == 1;
                                        if spike {
                                            // Multiplexer admits the kernel
                                            // value into the adder.
                                            step_sum[oy * w_out + ox] += kernel_value;
                                            stats.adder_ops += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                // Output logic: accumulate over input channels happened in
                // `step_sum`; now fold this time step into the running
                // radix accumulation with a single left shift.
                for (acc, s) in channel_acc.iter_mut().zip(step_sum.iter()) {
                    *acc = (*acc << 1) + s;
                }
            }
            // Bias and write-back of the completed output channel.
            let bias = bias_acc.as_slice().get(oc).copied().unwrap_or(0);
            for (idx, acc) in channel_acc.iter().enumerate() {
                accumulators.as_mut_slice()[oc * h_out * w_out + idx] = acc + bias;
                stats.output_writes += 1;
            }
        }

        Ok(ConvResult {
            accumulators,
            stats,
        })
    }

    /// Closed-form cycle count of [`ConvolutionUnit::run_layer`] for a layer
    /// with the given dimensions — the formula the analytical timing model
    /// uses.  Unit tests assert that the cycle-stepped simulation matches
    /// this expression exactly.
    pub fn layer_cycles(
        &self,
        c_in: usize,
        c_out: usize,
        h_out: usize,
        w_out: usize,
        kernel: usize,
        time_steps: usize,
    ) -> u64 {
        let tiles = self.column_tiles(w_out) as u64;
        let per_row = (kernel as u64) * (kernel as u64 + 1); // Kc shifts + 1 load, per kernel row
        let per_channel_pass =
            kernel as u64 + (h_out as u64) * tiles * per_row; // pipeline fill + rows
        (c_out as u64) * (time_steps as u64) * (c_in as u64) * per_channel_pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_tensor::ops;

    fn unit(x: usize, y: usize) -> ConvolutionUnit {
        ConvolutionUnit::new(ArrayGeometry {
            columns: x,
            rows: y,
        })
    }

    fn reference(
        input: &Tensor<i64>,
        kernel: &Tensor<i64>,
        bias: &Tensor<i64>,
        stride: usize,
        padding: usize,
    ) -> Tensor<i64> {
        let acc = ops::conv2d(input, kernel, None, stride, padding).unwrap();
        let dims = acc.shape().dims().to_vec();
        let (o, hw) = (dims[0], dims[1] * dims[2]);
        let mut out = acc.clone();
        for oc in 0..o {
            for i in 0..hw {
                out.as_mut_slice()[oc * hw + i] += bias.as_slice()[oc];
            }
        }
        out
    }

    #[test]
    fn matches_reference_convolution_bit_exactly() {
        let input = Tensor::from_vec(
            vec![2, 5, 5],
            (0..50).map(|v| (v * 7 % 8) as i64).collect(),
        )
        .unwrap();
        let kernel = Tensor::from_vec(
            vec![3, 2, 3, 3],
            (0..54).map(|v| ((v % 7) as i64) - 3).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(vec![3], vec![5i64, -2, 0]).unwrap();
        let result = unit(8, 3)
            .run_layer(&input, &kernel, &bias, 3, 1, 0)
            .unwrap();
        let expected = reference(&input, &kernel, &bias, 1, 0);
        assert_eq!(result.accumulators, expected);
    }

    #[test]
    fn matches_reference_with_padding_and_stride() {
        let input = Tensor::from_vec(
            vec![1, 6, 6],
            (0..36).map(|v| (v % 4) as i64).collect(),
        )
        .unwrap();
        let kernel = Tensor::from_vec(
            vec![2, 1, 3, 3],
            (0..18).map(|v| ((v % 5) as i64) - 2).collect(),
        )
        .unwrap();
        let bias = Tensor::filled(vec![2], 1i64);
        let result = unit(4, 3)
            .run_layer(&input, &kernel, &bias, 2, 2, 1)
            .unwrap();
        let expected = reference(&input, &kernel, &bias, 2, 1);
        assert_eq!(result.accumulators, expected);
    }

    #[test]
    fn column_tiling_does_not_change_results() {
        let input = Tensor::from_vec(
            vec![1, 5, 9],
            (0..45).map(|v| (v % 3) as i64).collect(),
        )
        .unwrap();
        let kernel = Tensor::from_vec(vec![1, 1, 3, 3], vec![1i64; 9]).unwrap();
        let bias = Tensor::filled(vec![1], 0i64);
        // Wide unit (no tiling) vs narrow unit (tiling) must agree.
        let wide = unit(16, 3)
            .run_layer(&input, &kernel, &bias, 2, 1, 0)
            .unwrap();
        let narrow = unit(2, 3)
            .run_layer(&input, &kernel, &bias, 2, 1, 0)
            .unwrap();
        assert_eq!(wide.accumulators, narrow.accumulators);
    }

    #[test]
    fn silent_input_uses_no_adders() {
        let input = Tensor::filled(vec![1, 4, 4], 0i64);
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 3i64);
        let bias = Tensor::filled(vec![1], 0i64);
        let result = unit(4, 3)
            .run_layer(&input, &kernel, &bias, 4, 1, 0)
            .unwrap();
        assert_eq!(result.stats.adder_ops, 0);
        assert!(result.accumulators.iter().all(|&v| v == 0));
        // Cycles are still consumed: the schedule is input-independent.
        assert!(result.stats.cycles > 0);
    }

    #[test]
    fn denser_spike_trains_cost_more_adder_operations() {
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 1i64);
        let bias = Tensor::filled(vec![1], 0i64);
        let sparse = Tensor::filled(vec![1, 4, 4], 1i64); // one spike (LSB)
        let dense = Tensor::filled(vec![1, 4, 4], 7i64); // three spikes
        let u = unit(4, 3);
        let sparse_ops = u
            .run_layer(&sparse, &kernel, &bias, 3, 1, 0)
            .unwrap()
            .stats
            .adder_ops;
        let dense_ops = u
            .run_layer(&dense, &kernel, &bias, 3, 1, 0)
            .unwrap()
            .stats
            .adder_ops;
        assert_eq!(dense_ops, 3 * sparse_ops);
    }

    #[test]
    fn cycle_count_matches_closed_form() {
        let input = Tensor::from_vec(
            vec![3, 6, 6],
            (0..108).map(|v| (v % 8) as i64).collect(),
        )
        .unwrap();
        let kernel = Tensor::filled(vec![4, 3, 3, 3], 1i64);
        let bias = Tensor::filled(vec![4], 0i64);
        let u = unit(2, 3);
        let result = u.run_layer(&input, &kernel, &bias, 5, 1, 0).unwrap();
        let expected = u.layer_cycles(3, 4, 4, 4, 3, 5);
        assert_eq!(result.stats.cycles, expected);
    }

    #[test]
    fn cycles_scale_linearly_with_time_steps() {
        let input = Tensor::filled(vec![1, 5, 5], 3i64);
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 1i64);
        let bias = Tensor::filled(vec![1], 0i64);
        let u = unit(3, 3);
        let c3 = u.run_layer(&input, &kernel, &bias, 3, 1, 0).unwrap().stats.cycles;
        let c6 = u.run_layer(&input, &kernel, &bias, 6, 1, 0).unwrap().stats.cycles;
        assert_eq!(c6, 2 * c3);
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let input = Tensor::filled(vec![1, 8, 8], 1i64);
        let kernel = Tensor::filled(vec![1, 1, 5, 5], 1i64);
        let bias = Tensor::filled(vec![1], 0i64);
        // Only 3 adder rows — a 5-row kernel cannot be mapped.
        let err = unit(8, 3)
            .run_layer(&input, &kernel, &bias, 3, 1, 0)
            .unwrap_err();
        assert!(matches!(err, AccelError::UnsupportedLayer { .. }));
    }

    #[test]
    fn radix_weighting_is_applied_msb_first() {
        // Single 1x1 kernel of weight 1: the accumulator must equal the
        // input level itself, demonstrating the left-shift accumulation.
        let input = Tensor::from_vec(vec![1, 1, 2], vec![5i64, 3]).unwrap();
        let kernel = Tensor::from_vec(vec![1, 1, 1, 1], vec![1i64]).unwrap();
        let bias = Tensor::filled(vec![1], 0i64);
        let result = unit(2, 1)
            .run_layer(&input, &kernel, &bias, 3, 1, 0)
            .unwrap();
        assert_eq!(result.accumulators.as_slice(), &[5, 3]);
    }
}
