//! Activity-based energy model.
//!
//! The calibrated power model in [`crate::cost`] answers the question the
//! paper's tables ask ("what does the wall-plug meter read?").  This module
//! complements it with a bottom-up, *activity-based* estimate: every gated
//! adder operation, activation-buffer access, weight read and DRAM bit has
//! an energy cost, so sparser spike trains — the whole point of an SNN —
//! directly translate into lower energy.  The per-operation constants are
//! representative 16 nm-FPGA figures; their absolute calibration matters
//! less than the fact that the *ratios* (DRAM ≫ BRAM ≫ adder) are right.

use crate::config::AcceleratorConfig;
use crate::cost;
use crate::memory::MemoryTraffic;
use crate::report::RunReport;
use crate::units::UnitStats;
use serde::{Deserialize, Serialize};

/// Per-operation energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one gated adder operation (LUT/carry adder toggling).
    pub adder_op_pj: f64,
    /// Energy of one activation-buffer (BRAM) row read.
    pub activation_read_pj: f64,
    /// Energy of one weight-memory (BRAM) word read.
    pub weight_read_pj: f64,
    /// Energy of one activation write.
    pub activation_write_pj: f64,
    /// Energy per bit transferred from external DRAM.
    pub dram_bit_pj: f64,
    /// Static/leakage power in watts, integrated over the run time.
    pub static_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            adder_op_pj: 0.4,
            activation_read_pj: 6.0,
            weight_read_pj: 3.0,
            activation_write_pj: 6.0,
            dram_bit_pj: 20.0,
            static_w: 2.95,
        }
    }
}

/// Energy breakdown of one inference, in microjoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy of the gated adder operations.
    pub compute_uj: f64,
    /// Energy of on-chip memory accesses (activation + weight buffers).
    pub on_chip_memory_uj: f64,
    /// Energy of external DRAM traffic.
    pub dram_uj: f64,
    /// Static/leakage energy over the inference duration.
    pub static_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.compute_uj + self.on_chip_memory_uj + self.dram_uj + self.static_uj
    }

    /// Fraction of the dynamic energy spent in memory accesses — the
    /// quantity the paper's dataflow (activation and kernel reuse) is
    /// designed to minimise.
    pub fn memory_fraction(&self) -> f64 {
        let dynamic = self.compute_uj + self.on_chip_memory_uj + self.dram_uj;
        if dynamic <= 0.0 {
            0.0
        } else {
            (self.on_chip_memory_uj + self.dram_uj) / dynamic
        }
    }
}

impl EnergyModel {
    /// Energy of the given unit activity (no static component).
    pub fn activity_energy_uj(&self, work: &UnitStats, traffic: &MemoryTraffic) -> EnergyBreakdown {
        let compute_uj = work.adder_ops as f64 * self.adder_op_pj * 1e-6;
        let on_chip = work.activation_reads as f64 * self.activation_read_pj
            + work.kernel_reads as f64 * self.weight_read_pj
            + work.output_writes as f64 * self.activation_write_pj;
        EnergyBreakdown {
            compute_uj,
            on_chip_memory_uj: on_chip * 1e-6,
            dram_uj: traffic.dram_bits as f64 * self.dram_bit_pj * 1e-6,
            static_uj: 0.0,
        }
    }

    /// Full energy breakdown of a simulated inference, including static
    /// energy over the run's latency.
    pub fn inference_energy(
        &self,
        report: &RunReport,
        config: &AcceleratorConfig,
    ) -> EnergyBreakdown {
        let mut breakdown = self.activity_energy_uj(&report.total_work(), &report.traffic);
        breakdown.static_uj = self.static_w * report.latency_us(config);
        breakdown
    }

    /// Sanity comparison against the top-down calibrated power model: the
    /// activity-based estimate for a run, divided by the power-model
    /// estimate.  Values far from 1 indicate the run is unusually sparse or
    /// dense compared with the calibration point.
    pub fn ratio_to_power_model(&self, report: &RunReport, config: &AcceleratorConfig) -> f64 {
        let activity = self.inference_energy(report, config).total_uj();
        let power = cost::estimate_power(config);
        let top_down = cost::inference_energy_uj(&power, report.latency_us(config));
        activity / top_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::sim::Accelerator;
    use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
    use snn_model::params::Parameters;
    use snn_model::zoo;
    use snn_tensor::Tensor;

    fn run_tiny(brightness: f32) -> (RunReport, AcceleratorConfig) {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 3).unwrap();
        let input = Tensor::filled(vec![1, 12, 12], brightness);
        let calib = CalibrationStats::collect(&net, &params, [&input]).unwrap();
        let model = convert(&net, &params, &calib, ConversionConfig::default()).unwrap();
        let config = AcceleratorConfig::default();
        let report = Accelerator::new(config).run(&model, &input).unwrap();
        (report, config)
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let (report, config) = run_tiny(0.7);
        let model = EnergyModel::default();
        let breakdown = model.inference_energy(&report, &config);
        let sum = breakdown.compute_uj
            + breakdown.on_chip_memory_uj
            + breakdown.dram_uj
            + breakdown.static_uj;
        assert!((breakdown.total_uj() - sum).abs() < 1e-12);
        assert!(breakdown.total_uj() > 0.0);
        assert!((0.0..=1.0).contains(&breakdown.memory_fraction()));
    }

    #[test]
    fn sparser_inputs_use_less_dynamic_energy() {
        // A darker input produces fewer spikes, hence fewer gated adder
        // operations and less compute energy, at identical latency.
        let (dense, _config) = run_tiny(1.0);
        let (sparse, _) = run_tiny(0.05);
        let model = EnergyModel::default();
        let e_dense = model.activity_energy_uj(&dense.total_work(), &dense.traffic);
        let e_sparse = model.activity_energy_uj(&sparse.total_work(), &sparse.traffic);
        assert!(e_sparse.compute_uj < e_dense.compute_uj);
        assert_eq!(dense.total_cycles(), sparse.total_cycles());
    }

    #[test]
    fn dram_energy_is_zero_for_on_chip_weights() {
        let (report, config) = run_tiny(0.5);
        let breakdown = EnergyModel::default().inference_energy(&report, &config);
        assert_eq!(breakdown.dram_uj, 0.0);
    }

    #[test]
    fn static_energy_dominates_tiny_workloads() {
        // For a tiny network the FPGA's static power dwarfs the dynamic
        // energy — consistent with Table II, where adding compute units
        // barely moves total power.
        let (report, config) = run_tiny(0.5);
        let breakdown = EnergyModel::default().inference_energy(&report, &config);
        assert!(breakdown.static_uj > breakdown.compute_uj);
    }

    #[test]
    fn activity_estimate_is_within_an_order_of_magnitude_of_power_model() {
        let (report, config) = run_tiny(0.6);
        let ratio = EnergyModel::default().ratio_to_power_model(&report, &config);
        assert!(
            (0.05..20.0).contains(&ratio),
            "activity/power-model ratio {ratio} is implausible"
        );
    }
}
