//! Streaming batch serving: replica engines behind a queue-aware router.
//!
//! [`StreamServer`] compiles one model **once** and serves it from
//! [`ServerOptions::replicas`] independent engine replicas (default 1 —
//! the single-engine server of old).  Each replica owns a bounded
//! submission queue and a dispatcher thread that drains it into
//! micro-batches of up to [`ServerOptions::max_batch`] inputs, executing
//! each batch over its slice of the shared worker pool — compiling once at
//! start-up instead of per call, and (by default) serving on the
//! **bit-plane sparse engine**.  In front of the replicas sits a
//! `router::Router` that places every submission by live per-replica
//! queue snapshots: least depth first, recent drain rate as the tiebreak,
//! sticky fallback when no snapshot is fresh.  Every report a client
//! receives is bit-identical to the matching solo
//! [`crate::sim::Accelerator`] call **regardless of the replica count**
//! (pinned by property tests).
//!
//! All parallelism — batch workers, per-layer channel fan-out and pipeline
//! stage threads — draws from the single global
//! [`snn_parallel::ThreadBudget`], partitioned evenly between the
//! replicas, so a server under heavy traffic cannot oversubscribe the
//! host.  [`StreamServer::stats`] aggregates the per-replica counters
//! (completed inferences, micro-batch sizes, wall-clock throughput,
//! modelled per-unit utilisation) into one [`ServerStats`] view that also
//! carries the per-replica slices; the end-to-end benchmark records these
//! in `BENCH_serve.json`.
//!
//! # Admission policy
//!
//! Every submission queue is **bounded** by
//! [`ServerOptions::queue_capacity`] with a *reject-when-full* policy:
//! [`StreamServer::submit`] never blocks the caller — the router spills a
//! submission from a full replica to the next candidate, and only when
//! **every** healthy replica is full is the submission rejected with the
//! typed [`AccelError::QueueFull`] (carrying the aggregate depth and
//! capacity) and counted in [`ServerStats::rejected`].  Rejection is load
//! shedding, not failure: the client sees exactly which limit it hit and
//! can retry, back off or route elsewhere, while the server's memory stays
//! bounded no matter how fast clients submit — the property a network
//! front-end needs.  [`StreamServer::queue_snapshot`] exposes the live
//! aggregate queue depth and recent drain rate (windowed over the last
//! [`DRAIN_WINDOW_BATCHES`] micro-batches per replica) so that front-end
//! (`snn-net`) can attach a concrete *retry-after* hint to every
//! rejection.
//!
//! # Completion paths
//!
//! Results come back one of two ways:
//!
//! * **Tickets** — [`StreamServer::submit`] returns a [`Ticket`] whose
//!   [`Ticket::wait`] blocks a thread (or [`Ticket::try_wait`] polls).
//! * **Completion queue** — [`StreamServer::submit_tagged`] delivers a
//!   tagged [`Completion`] through a shared [`CompletionSink`] and then
//!   invokes the sink's waker callback.  This is the path an event-driven
//!   front-end uses: the `snn-net` reactor hands the dispatcher a waker
//!   that writes one byte into its wake pipe, keeps hundreds of inferences
//!   in flight across its connections, and never parks a thread per
//!   request.  Both paths are bit-identical, on every replica.
//!
//! # Graceful degradation
//!
//! Each replica's dispatcher runs under a supervisor: a panic that escapes
//! the per-item unwind guard kills only that replica.  The supervisor
//! marks it unhealthy, closes its queue, and settles its queued and
//! in-flight submissions with the typed [`AccelError::ReplicaDown`] —
//! those clients get an immediate answer and can resubmit, the router
//! reroutes everything else to the surviving replicas, and
//! [`ServerStats::healthy_replicas`] drops below
//! [`ServerStats::replicas`]: healthy but degraded, not dead.  Only when
//! the last replica dies do new submissions fail with
//! [`AccelError::Serving`].

mod replica;
pub mod router;
mod stats;

pub use stats::{
    drain_rate, QueueSnapshot, ReplicaStats, ServerStats, DEFAULT_RETRY_AFTER_MS,
    DRAIN_WINDOW_BATCHES, MAX_RETRY_AFTER_MS,
};

use crate::config::AcceleratorConfig;
use crate::exec::{utilisation_from_program, ExecOptions, ExecutionMode};
use crate::report::RunReport;
use crate::sim::Accelerator;
use crate::{AccelError, Result};
use replica::{relock, EngineShared, ReplicaShared, ReplyTo, Submission};
use router::Router;
use snn_model::snn::SnnModel;
use snn_telemetry::{Outcome, Phase, SpanRecorder};
use snn_tensor::Tensor;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Options of a [`StreamServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Maximum number of queued inputs drained into one micro-batch (per
    /// replica).
    pub max_batch: usize,
    /// At which level of detail inferences execute.  The default is
    /// [`ExecutionMode::CycleAccurate`]: the sparse engine is the faster
    /// serving path *and* reports exact unit work; pick
    /// [`ExecutionMode::Transaction`] to serve the functional model with
    /// analytical timing only.
    pub mode: ExecutionMode,
    /// Execution-engine options applied to every inference.  The engine's
    /// [`ExecOptions::thread_cap`] is set per replica to its share of the
    /// global thread budget; the value given here is used for compilation
    /// and as the base the per-replica cap overlays.
    pub exec: ExecOptions,
    /// Maximum undispatched submissions **each replica's** queue holds
    /// before it refuses placements; when every healthy replica is full,
    /// [`StreamServer::submit`] rejects with [`AccelError::QueueFull`]
    /// (see the module docs on the admission policy).  Must be at least
    /// `1`: a zero capacity would reject every submission, so
    /// [`StreamServer::start_with`] refuses it with the typed
    /// [`AccelError::InvalidConfig`] instead of starting a server that can
    /// never serve (use [`StreamServer::shutdown`] to drain).
    pub queue_capacity: usize,
    /// Server-wide deadline on **queue wait**: a submission that has sat
    /// undispatched for this long is shed *before* compute with the typed
    /// [`AccelError::DeadlineExceeded`] (counted in
    /// [`ServerStats::deadline_sheds`]) instead of being computed late for
    /// a client that has given up.  `None` (the default) never sheds;
    /// per-request deadlines passed to [`StreamServer::submit_within`]
    /// tighten this bound but never loosen it.  A zero duration sheds
    /// every queued submission — useful in tests, degenerate in
    /// production.
    pub max_queue_wait: Option<Duration>,
    /// How many engine replicas serve the compiled model (default 1).
    /// Each replica gets its own dispatcher thread, bounded queue and an
    /// even share of the global thread budget; the router places each
    /// submission on the least-loaded healthy replica.  Results are
    /// bit-identical for every value.  Must be at least `1`
    /// ([`AccelError::InvalidConfig`] otherwise).
    pub replicas: usize,
    /// Whether per-request span tracing is recorded (default: on, unless
    /// the environment sets `SNN_TRACE=0`).  Tracing is wait-free on the
    /// hot path — phase marks live on the submission itself and the only
    /// shared touch is one shard mutex at completion — with a documented
    /// overhead budget of <3% throughput versus tracing off, and results
    /// are bit-identical either way (pinned by tests).  See
    /// [`StreamServer::recorder`].
    pub trace: bool,
}

/// Default [`ServerOptions::queue_capacity`]: deep enough that a paced
/// client never notices, small enough to bound memory under abuse.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_batch: 8,
            mode: ExecutionMode::CycleAccurate,
            exec: ExecOptions::default(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            max_queue_wait: None,
            replicas: 1,
            trace: snn_telemetry::trace_enabled_from_env(),
        }
    }
}

/// A pending inference: resolved by [`Ticket::wait`] (blocking) or polled
/// with [`Ticket::try_wait`] (non-blocking).
#[derive(Debug)]
pub struct Ticket {
    receiver: mpsc::Receiver<Result<RunReport>>,
}

impl Ticket {
    /// Blocks until the inference completes and returns its report.
    ///
    /// # Errors
    ///
    /// Propagates execution errors, or [`AccelError::Serving`] when the
    /// server shut down before this inference was dispatched.
    pub fn wait(self) -> Result<RunReport> {
        self.receiver.recv().map_err(|_| AccelError::Serving {
            context: "server shut down before the inference completed".to_string(),
        })?
    }

    /// Non-blocking poll: returns the report if the inference has settled,
    /// `None` while it is still queued or executing.
    ///
    /// The result is delivered **once**: after `try_wait` returns `Some`,
    /// later calls (and [`Ticket::wait`]) see the ticket as dead and report
    /// [`AccelError::Serving`].  Event loops that poll tickets should drop
    /// the ticket on `Some`.
    pub fn try_wait(&self) -> Option<Result<RunReport>> {
        match self.receiver.try_recv() {
            Ok(report) => Some(report),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(AccelError::Serving {
                context: "server shut down before the inference completed".to_string(),
            })),
        }
    }
}

/// A settled tagged submission, delivered through the channel half of a
/// [`CompletionSink`] — the non-blocking counterpart of a [`Ticket`].
#[derive(Debug)]
pub struct Completion {
    /// The caller-chosen tag passed to [`StreamServer::submit_tagged`].
    pub tag: u64,
    /// The inference outcome, bit-identical to what the matching
    /// [`Ticket::wait`] would have returned.
    pub result: Result<RunReport>,
}

/// The delivery side of the non-blocking completion path.
///
/// Built with [`CompletionSink::new`], which returns the sink (handed to
/// [`StreamServer::submit_tagged`], clonable) and the receiver the caller
/// drains.  When a tagged inference settles, the dispatcher pushes a
/// [`Completion`] into the channel **and then** invokes the waker — so a
/// reactor blocked in `poll(2)` can use the waker to write one byte into a
/// wake pipe and is guaranteed to observe the completion after waking.  No
/// thread ever blocks on a reply channel.
#[derive(Clone)]
pub struct CompletionSink {
    pub(crate) sender: mpsc::Sender<Completion>,
    pub(crate) waker: Arc<dyn Fn() + Send + Sync>,
}

impl fmt::Debug for CompletionSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompletionSink").finish_non_exhaustive()
    }
}

impl CompletionSink {
    /// Creates a sink and its completion receiver.  `waker` is called by
    /// the dispatcher thread after every completion it enqueues; it must be
    /// cheap and must not block (e.g. a non-blocking one-byte pipe write).
    pub fn new(waker: Arc<dyn Fn() + Send + Sync>) -> (Self, mpsc::Receiver<Completion>) {
        let (sender, receiver) = mpsc::channel();
        (CompletionSink { sender, waker }, receiver)
    }
}

/// Streaming micro-batching inference server.  See the module docs.
pub struct StreamServer {
    engine: Arc<EngineShared>,
    router: Router,
    replicas: Vec<Arc<ReplicaShared>>,
    dispatchers: Vec<JoinHandle<()>>,
    started: Instant,
    shutting_down: AtomicBool,
    recorder: Arc<SpanRecorder>,
}

impl fmt::Debug for StreamServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamServer")
            .field("options", &self.engine.options)
            .field("replicas", &self.replicas.len())
            .finish_non_exhaustive()
    }
}

impl StreamServer {
    /// Starts a server for `model` on an accelerator with `config` and
    /// default [`ServerOptions`].  The model is compiled once, up front.
    ///
    /// # Errors
    ///
    /// Returns an error when the model cannot be mapped onto the
    /// configuration.
    pub fn start(config: AcceleratorConfig, model: SnnModel) -> Result<Self> {
        Self::start_with(config, model, ServerOptions::default())
    }

    /// Starts a server with explicit options: the model is compiled once
    /// and [`ServerOptions::replicas`] engine replicas are spawned over
    /// the shared program.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for degenerate options — a
    /// `max_batch` of `0` (the dispatcher could never drain a micro-batch),
    /// a `queue_capacity` of `0` (every submission would be rejected) or
    /// `replicas` of `0` (no engine could ever serve) — and otherwise the
    /// errors of [`StreamServer::start`].
    pub fn start_with(
        config: AcceleratorConfig,
        model: SnnModel,
        options: ServerOptions,
    ) -> Result<Self> {
        if options.max_batch == 0 {
            return Err(AccelError::InvalidConfig {
                context: "ServerOptions::max_batch is 0: the dispatcher could never drain \
                          a micro-batch"
                    .to_string(),
            });
        }
        if options.queue_capacity == 0 {
            return Err(AccelError::InvalidConfig {
                context: "ServerOptions::queue_capacity is 0: every submission would be \
                          rejected (shut the server down to drain it instead)"
                    .to_string(),
            });
        }
        if options.replicas == 0 {
            return Err(AccelError::InvalidConfig {
                context: "ServerOptions::replicas is 0: no engine replica could ever serve \
                          a submission"
                    .to_string(),
            });
        }
        let accel = Accelerator::with_options(config, options.exec);
        let program = accel.compile(&model)?;
        let engine = Arc::new(EngineShared {
            accel,
            model,
            program,
            options,
        });
        // Partition the global budget evenly; every replica gets at least
        // one thread (oversubscription by at most replicas − budget when
        // replicas exceed the budget, which serialises but stays correct).
        let thread_share = (snn_parallel::budget().total() / options.replicas).max(1);
        let mut replicas = Vec::with_capacity(options.replicas);
        let mut dispatchers = Vec::with_capacity(options.replicas);
        for index in 0..options.replicas {
            let shared = Arc::new(ReplicaShared::new(index, Arc::clone(&engine), thread_share));
            replicas.push(Arc::clone(&shared));
            let handle = thread::Builder::new()
                .name(format!("snn-serve-rep{index}"))
                .spawn(move || replica::run(&shared))
                .expect("spawn replica dispatcher thread");
            dispatchers.push(handle);
        }
        Ok(StreamServer {
            engine,
            router: Router::new(replicas.clone()),
            replicas,
            dispatchers,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            recorder: Arc::new(SpanRecorder::new(options.replicas, options.trace)),
        })
    }

    /// The server's span recorder: per-replica phase histograms and the
    /// ring buffer of completed [`snn_telemetry::RequestTrace`]s.  A
    /// front-end drains it for the JSONL trace export and renders its
    /// histograms into the Prometheus exposition.  Disabled
    /// ([`ServerOptions::trace`] false) it records nothing and every
    /// per-request hook is a no-op.
    pub fn recorder(&self) -> &Arc<SpanRecorder> {
        &self.recorder
    }

    /// Enqueues one input for inference and returns its [`Ticket`].
    ///
    /// Never blocks: admission is governed by the bounded-queue policy in
    /// the module docs; the router picks the least-loaded healthy replica.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::QueueFull`] when every healthy replica's
    /// queue already holds [`ServerOptions::queue_capacity`] undispatched
    /// inputs (the rejection is also counted in [`ServerStats::rejected`]),
    /// and [`AccelError::Serving`] when the server has begun shutting down
    /// or no replica is healthy.
    pub fn submit(&self, input: Tensor<f32>) -> Result<Ticket> {
        self.submit_within(input, None)
    }

    /// Like [`StreamServer::submit`] with a per-request **queue-wait
    /// deadline**: if the submission is still undispatched after
    /// `deadline`, it is shed before compute and the ticket resolves with
    /// [`AccelError::DeadlineExceeded`] (counted in
    /// [`ServerStats::deadline_sheds`]).  The effective deadline is the
    /// tighter of `deadline` and [`ServerOptions::max_queue_wait`]; `None`
    /// defers entirely to the server-wide bound.
    ///
    /// # Errors
    ///
    /// Admission errors exactly as [`StreamServer::submit`]; the deadline
    /// only governs what happens after admission.
    pub fn submit_within(&self, input: Tensor<f32>, deadline: Option<Duration>) -> Result<Ticket> {
        let (reply, receiver) = mpsc::channel();
        self.enqueue(input, ReplyTo::Ticket(reply), deadline)?;
        Ok(Ticket { receiver })
    }

    /// Enqueues one input whose result is delivered as a [`Completion`]
    /// carrying `tag` through `sink`'s channel — the **non-blocking**
    /// completion path: no thread waits on a ticket; the dispatcher pushes
    /// the completion and invokes the sink's waker.  This is how an
    /// event-loop front-end (the `snn-net` reactor) keeps many inferences
    /// in flight per connection without parking a thread on each.
    ///
    /// Admission is identical to [`StreamServer::submit`] — same bounded
    /// queues, same typed rejections — and results are bit-identical to the
    /// matching blocking call.
    ///
    /// # Errors
    ///
    /// [`AccelError::QueueFull`] and [`AccelError::Serving`] exactly as
    /// [`StreamServer::submit`]; a rejected submission produces **no**
    /// completion, so callers settle the request from the error in hand.
    pub fn submit_tagged(&self, input: Tensor<f32>, tag: u64, sink: &CompletionSink) -> Result<()> {
        self.submit_tagged_within(input, tag, sink, None)
    }

    /// Like [`StreamServer::submit_tagged`] with a per-request queue-wait
    /// deadline (see [`StreamServer::submit_within`]).  An expired
    /// submission **does** produce a completion — carrying
    /// [`AccelError::DeadlineExceeded`] — because the front-end needs to
    /// answer the request it already accepted.
    ///
    /// # Errors
    ///
    /// Admission errors exactly as [`StreamServer::submit_tagged`].
    pub fn submit_tagged_within(
        &self,
        input: Tensor<f32>,
        tag: u64,
        sink: &CompletionSink,
        deadline: Option<Duration>,
    ) -> Result<()> {
        self.enqueue(
            input,
            ReplyTo::Sink {
                tag,
                sink: sink.clone(),
            },
            deadline,
        )
    }

    fn enqueue(
        &self,
        input: Tensor<f32>,
        reply: ReplyTo,
        deadline: Option<Duration>,
    ) -> Result<()> {
        // Tagged submissions are traced under their caller-chosen tag (the
        // reactor's unique wire tag), tickets under a recorder-assigned id
        // — either way one trace per request id.
        let request_id = match &reply {
            ReplyTo::Sink { tag, .. } => *tag,
            ReplyTo::Ticket(_) => self.recorder.next_request_id(),
        };
        let mut trace = self.recorder.begin(request_id);
        if self.shutting_down.load(Ordering::SeqCst) {
            trace.finish(Outcome::Error {
                code: "serving".to_string(),
            });
            return Err(AccelError::Serving {
                context: "server is shutting down and no longer accepts submissions".to_string(),
            });
        }
        let deadline = match (deadline, self.engine.options.max_queue_wait) {
            (Some(request), Some(server)) => Some(request.min(server)),
            (Some(request), None) => Some(request),
            (None, server) => server,
        };
        trace.advance(Phase::Route);
        self.router.place(Submission {
            input,
            reply,
            enqueued_at: Instant::now(),
            deadline,
            trace,
        })
    }

    /// Submits all `inputs` and waits for all results, in order.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered — including an admission
    /// rejection, which cancels the not-yet-submitted remainder; already
    /// accepted inferences still complete server-side.
    pub fn run_all(&self, inputs: &[Tensor<f32>]) -> Result<Vec<RunReport>> {
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|i| self.submit(i.clone()))
            .collect::<Result<_>>()?;
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Cheap point-in-time queue-load snapshot aggregated over the
    /// **healthy** replicas: depths, capacities and recent drain rates
    /// summed — the inputs of a retry-after hint.  All zeros when no
    /// replica is healthy.  Takes each replica's queue and stats locks
    /// briefly (never both at once) and allocates nothing.
    pub fn queue_snapshot(&self) -> QueueSnapshot {
        let mut snapshot = QueueSnapshot {
            depth: 0,
            capacity: 0,
            drain_rate_ips: 0.0,
        };
        for replica in &self.replicas {
            if !replica.healthy.load(Ordering::SeqCst) {
                continue;
            }
            snapshot.depth += relock(&replica.queue).jobs.len();
            snapshot.capacity += self.engine.options.queue_capacity;
            snapshot.drain_rate_ips += relock(&replica.stats).drain_rate_ips(replica.started);
        }
        snapshot
    }

    /// How many replica dispatchers are alive and accepting placements —
    /// the lock-free health probe a front-end polls.
    pub fn healthy_replicas(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.healthy.load(Ordering::SeqCst))
            .count()
    }

    /// Snapshot of the serving statistics: aggregate counters plus the
    /// per-replica slices (see [`ServerStats`]).
    pub fn stats(&self) -> ServerStats {
        let options = &self.engine.options;
        let mut per_replica = Vec::with_capacity(self.replicas.len());
        for replica in &self.replicas {
            let healthy = replica.healthy.load(Ordering::SeqCst);
            let depth = relock(&replica.queue).jobs.len();
            let accum = relock(&replica.stats);
            per_replica.push(ReplicaStats {
                index: replica.index,
                healthy,
                completed: accum.completed,
                errors: accum.errors,
                batches: accum.batches,
                largest_batch: accum.largest_batch,
                panics: accum.panics,
                deadline_sheds: accum.deadline_sheds,
                queue: QueueSnapshot {
                    depth,
                    capacity: options.queue_capacity,
                    drain_rate_ips: accum.drain_rate_ips(replica.started),
                },
            });
        }
        let healthy_replicas = per_replica.iter().filter(|r| r.healthy).count();
        let mut queue = QueueSnapshot {
            depth: 0,
            capacity: 0,
            drain_rate_ips: 0.0,
        };
        for r in per_replica.iter().filter(|r| r.healthy) {
            queue.depth += r.queue.depth;
            queue.capacity += r.queue.capacity;
            queue.drain_rate_ips += r.queue.drain_rate_ips;
        }
        ServerStats {
            completed: per_replica.iter().map(|r| r.completed).sum(),
            errors: per_replica.iter().map(|r| r.errors).sum(),
            batches: per_replica.iter().map(|r| r.batches).sum(),
            largest_batch: per_replica
                .iter()
                .map(|r| r.largest_batch)
                .max()
                .unwrap_or(0),
            rejected: self.router.rejected.load(Ordering::SeqCst),
            panics: per_replica.iter().map(|r| r.panics).sum(),
            deadline_sheds: per_replica.iter().map(|r| r.deadline_sheds).sum(),
            queue,
            max_batch: options.max_batch,
            queue_capacity: options.queue_capacity,
            replicas: self.replicas.len(),
            healthy_replicas,
            per_replica,
            thread_budget: snn_parallel::budget().total(),
            elapsed_s: self.started.elapsed().as_secs_f64(),
            utilisation: utilisation_from_program(self.engine.accel.config(), &self.engine.program),
        }
    }

    /// Drains the queues, stops every replica dispatcher and returns the
    /// final statistics.  Queued-but-undispatched submissions are still
    /// served; submissions after shutdown starts are not.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        for replica in &self.replicas {
            replica.begin_shutdown();
        }
        for handle in self.dispatchers.drain(..) {
            // Replica panics are caught by the in-thread supervisor, so a
            // join error would mean the supervisor itself died; nothing is
            // left to salvage from that thread either way.
            let _ = handle.join();
        }
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Deliberate crash triggers for fault-injection builds.  Compiled only
/// with the `fault-injection` feature; release builds pay nothing.
///
/// Two sentinels with distinct blast radii:
///
/// * the **poison pill** ([`poison::PILL_BITS`]) panics *inside* the
///   micro-batch's per-item unwind guard, exercising the item-level
///   `EnginePanic` isolation path — one inference fails, the replica
///   survives;
/// * the **kill pill** ([`poison::KILL_BITS`]) panics *outside* that
///   guard, in the dispatcher itself, exercising the replica supervisor —
///   the whole replica dies, its stranded submissions settle with
///   [`AccelError::ReplicaDown`], and sibling replicas keep serving.
///
/// Both sentinels are quiet NaNs, so they round-trip bit-exactly through
/// the `snn-net` wire protocol and can be injected by a remote chaos
/// client.
#[cfg(feature = "fault-injection")]
pub mod poison {
    use snn_tensor::Tensor;

    /// Bit pattern of the per-item sentinel: a quiet NaN with a
    /// recognizable payload, so no legitimate input (finite activations)
    /// collides.
    pub const PILL_BITS: u32 = 0x7fc0_dead;

    /// Bit pattern of the replica-killing sentinel (a different quiet-NaN
    /// payload than [`PILL_BITS`]).
    pub const KILL_BITS: u32 = 0x7fc1_dead;

    /// The poison-pill value a test writes into an input's first element.
    pub fn pill() -> f32 {
        f32::from_bits(PILL_BITS)
    }

    /// The kill-pill value a test writes into an input's first element to
    /// bring down the whole replica that dequeues it.
    pub fn kill_pill() -> f32 {
        f32::from_bits(KILL_BITS)
    }

    /// Panics when `input` leads with the poison-pill sentinel.  Called
    /// inside the dispatcher's per-item unwind guard.
    pub(crate) fn check(input: &Tensor<f32>) {
        if input.as_slice().first().map(|v| v.to_bits()) == Some(PILL_BITS) {
            panic!("fault-injection poison pill in input");
        }
    }

    /// Panics when `input` leads with the kill-pill sentinel.  Called
    /// **outside** the per-item guard, so the unwind escapes the dispatch
    /// loop and lands in the replica supervisor.
    pub(crate) fn check_kill(input: &Tensor<f32>) {
        if input.as_slice().first().map(|v| v.to_bits()) == Some(KILL_BITS) {
            panic!("fault-injection kill pill: replica dispatcher going down");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
    use snn_model::params::Parameters;
    use snn_model::zoo;

    fn tiny_setup(time_steps: usize) -> (SnnModel, Vec<Tensor<f32>>) {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 11).unwrap();
        let inputs: Vec<Tensor<f32>> = (0..6)
            .map(|i| {
                let values: Vec<f32> = (0..144)
                    .map(|j| ((i * 17 + j * 5) % 100) as f32 / 100.0)
                    .collect();
                Tensor::from_vec(vec![1, 12, 12], values).unwrap()
            })
            .collect();
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let model = convert(
            &net,
            &params,
            &stats,
            ConversionConfig {
                weight_bits: 3,
                time_steps,
            },
        )
        .unwrap();
        (model, inputs)
    }

    #[test]
    fn served_reports_match_solo_runs_bit_exactly() {
        let (model, inputs) = tiny_setup(4);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start(config, model.clone()).unwrap();
        let served = server.run_all(&inputs).unwrap();
        let accel = Accelerator::new(config);
        for (report, input) in served.iter().zip(&inputs) {
            let solo = accel.run(&model, input).unwrap();
            assert_eq!(report, &solo);
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, inputs.len() as u64);
        assert_eq!(stats.errors, 0);
        assert!(stats.batches >= 1);
        assert!(stats.largest_batch <= stats.max_batch);
        assert!(!stats.utilisation.is_empty());
    }

    #[test]
    fn replicated_server_matches_single_replica_bit_exactly() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let solo = Accelerator::new(config);
        let server = StreamServer::start_with(
            config,
            model.clone(),
            ServerOptions {
                replicas: 2,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let served = server.run_all(&inputs).unwrap();
        for (report, input) in served.iter().zip(&inputs) {
            assert_eq!(report, &solo.run(&model, input).unwrap());
        }
        let stats = server.shutdown();
        assert_eq!(stats.replicas, 2);
        assert_eq!(stats.healthy_replicas, 2);
        assert_eq!(stats.per_replica.len(), 2);
        assert_eq!(stats.completed, inputs.len() as u64);
        assert_eq!(
            stats.per_replica.iter().map(|r| r.completed).sum::<u64>(),
            stats.completed,
            "aggregate counters are the sum of the replica slices"
        );
        assert!(stats.per_replica.iter().all(|r| r.healthy));
    }

    #[test]
    fn zero_replicas_are_rejected_at_construction() {
        let (model, _) = tiny_setup(3);
        match StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                replicas: 0,
                ..ServerOptions::default()
            },
        ) {
            Err(AccelError::InvalidConfig { context }) => {
                assert!(context.contains("ServerOptions"), "context: {context}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn transaction_mode_matches_run_fast() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start_with(
            config,
            model.clone(),
            ServerOptions {
                mode: ExecutionMode::Transaction,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let served = server.run_all(&inputs).unwrap();
        let accel = Accelerator::new(config);
        for (report, input) in served.iter().zip(&inputs) {
            let solo = accel.run_fast(&model, input).unwrap();
            assert_eq!(report, &solo);
        }
    }

    #[test]
    fn micro_batch_of_one_works() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_batch: 1,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let served = server.run_all(&inputs[..2]).unwrap();
        assert_eq!(served.len(), 2);
        let stats = server.shutdown();
        assert_eq!(stats.batches, 2);
        assert!((stats.mean_batch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_inputs_error_without_stalling_the_server() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let bad = server
            .submit(Tensor::filled(vec![1, 8, 8], 0.5f32))
            .unwrap();
        let good = server.submit(inputs[0].clone()).unwrap();
        assert!(bad.wait().is_err());
        assert!(good.wait().is_ok());
        let stats = server.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn unmappable_model_is_rejected_at_startup() {
        let (model, _) = tiny_setup(3);
        let config = AcceleratorConfig {
            conv_units: 0,
            ..AcceleratorConfig::default()
        };
        assert!(StreamServer::start(config, model).is_err());
    }

    #[test]
    fn shutdown_before_dispatch_resolves_tickets_with_an_error_or_result() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let ticket = server.submit(inputs[0].clone()).unwrap();
        // Shutdown drains the queue first, so this ticket resolves with a
        // report rather than hanging.
        let stats = server.shutdown();
        assert!(ticket.wait().is_ok());
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn degenerate_options_are_rejected_at_construction() {
        for options in [
            ServerOptions {
                queue_capacity: 0,
                ..ServerOptions::default()
            },
            ServerOptions {
                max_batch: 0,
                ..ServerOptions::default()
            },
        ] {
            let (model, _) = tiny_setup(3);
            match StreamServer::start_with(AcceleratorConfig::default(), model, options) {
                Err(AccelError::InvalidConfig { context }) => {
                    assert!(context.contains("ServerOptions"), "context: {context}");
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn full_queue_rejects_with_typed_error_and_counts() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_batch: 1,
                queue_capacity: 1,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        // Submitting is orders of magnitude faster than inference, so a
        // tight loop must fill the one-slot queue long before the bounded
        // attempt cap: once the dispatcher is busy with an earlier input
        // and one more waits, the next submission is shed.
        let mut tickets = Vec::new();
        let mut rejection = None;
        for _ in 0..10_000 {
            match server.submit(inputs[0].clone()) {
                Ok(ticket) => tickets.push(ticket),
                Err(err) => {
                    rejection = Some(err);
                    break;
                }
            }
        }
        match rejection.expect("a rejection within the attempt cap") {
            AccelError::QueueFull { queued, capacity } => {
                assert_eq!(queued, 1);
                assert_eq!(capacity, 1);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // A full queue yields a positive retry hint.
        let snapshot = server.queue_snapshot();
        assert_eq!(snapshot.capacity, 1);
        if snapshot.is_full() {
            assert!(snapshot.retry_after_ms() >= 1);
        }
        // Accepted inferences still complete.
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let stats = server.shutdown();
        assert!(stats.rejected >= 1);
        assert!(stats.completed >= 1);
    }

    #[test]
    fn queue_snapshot_reports_depth_capacity_and_drain_rate() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let before = server.queue_snapshot();
        assert_eq!(before.capacity, DEFAULT_QUEUE_CAPACITY);
        assert!(!before.is_full());
        assert_eq!(before.retry_after_ms(), 0, "empty queue: retry now");
        server.run_all(&inputs).unwrap();
        let after = server.queue_snapshot();
        assert_eq!(after.depth, 0, "run_all drained everything");
        assert!(after.drain_rate_ips > 0.0, "served work implies a rate");
        let stats = server.shutdown();
        assert_eq!(stats.queue.capacity, DEFAULT_QUEUE_CAPACITY);
    }

    #[test]
    fn retry_hint_math_covers_the_fallbacks() {
        let empty = QueueSnapshot {
            depth: 0,
            capacity: 8,
            drain_rate_ips: 100.0,
        };
        assert_eq!(empty.retry_after_ms(), 0);
        let unmeasured = QueueSnapshot {
            depth: 3,
            capacity: 8,
            drain_rate_ips: 0.0,
        };
        assert_eq!(unmeasured.retry_after_ms(), DEFAULT_RETRY_AFTER_MS);
        let typical = QueueSnapshot {
            depth: 5,
            capacity: 8,
            drain_rate_ips: 50.0,
        };
        // 5 inferences at 50/s = 100 ms.
        assert_eq!(typical.retry_after_ms(), 100);
        let glacial = QueueSnapshot {
            depth: 1000,
            capacity: 1000,
            drain_rate_ips: 0.001,
        };
        assert_eq!(glacial.retry_after_ms(), MAX_RETRY_AFTER_MS);
    }

    #[test]
    fn try_wait_polls_without_blocking_and_matches_wait() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start(config, model.clone()).unwrap();
        let ticket = server.submit(inputs[0].clone()).unwrap();
        // Poll until it settles (bounded, far beyond any plausible run).
        let mut polled = None;
        for _ in 0..20_000 {
            if let Some(result) = ticket.try_wait() {
                polled = Some(result);
                break;
            }
            thread::sleep(std::time::Duration::from_micros(200));
        }
        let report = polled
            .expect("inference settles within the poll cap")
            .unwrap();
        let solo = Accelerator::new(config).run(&model, &inputs[0]).unwrap();
        assert_eq!(report, solo, "polled result equals the blocking oracle");
        // The result was delivered once; the drained ticket is dead.
        match ticket.try_wait() {
            Some(Err(AccelError::Serving { .. })) => {}
            other => panic!("expected a dead ticket, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn tagged_submissions_complete_through_the_sink_with_a_wake_per_completion() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start(config, model.clone()).unwrap();
        let wakes = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let wakes_in_waker = Arc::clone(&wakes);
        let (sink, completions) = CompletionSink::new(Arc::new(move || {
            wakes_in_waker.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }));
        for (tag, input) in inputs.iter().enumerate() {
            server
                .submit_tagged(input.clone(), tag as u64, &sink)
                .unwrap();
        }
        let mut seen = vec![false; inputs.len()];
        let accel = Accelerator::new(config);
        for _ in 0..inputs.len() {
            let completion = completions
                .recv_timeout(std::time::Duration::from_secs(60))
                .expect("completion arrives");
            let tag = completion.tag as usize;
            assert!(!seen[tag], "tag {tag} delivered twice");
            seen[tag] = true;
            let report = completion.result.unwrap();
            let solo = accel.run(&model, &inputs[tag]).unwrap();
            assert_eq!(report, solo, "tagged result equals the solo oracle");
        }
        assert!(seen.iter().all(|&s| s), "every tag completed");
        assert_eq!(
            wakes.load(std::sync::atomic::Ordering::SeqCst),
            inputs.len(),
            "one wake per completion, sent after the enqueue"
        );
        let stats = server.shutdown();
        assert_eq!(stats.completed, inputs.len() as u64);
    }

    #[test]
    fn tagged_rejections_produce_no_completion() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_batch: 1,
                queue_capacity: 1,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (sink, completions) = CompletionSink::new(Arc::new(|| {}));
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for tag in 0..10_000 {
            match server.submit_tagged(inputs[0].clone(), tag, &sink) {
                Ok(()) => accepted += 1,
                Err(AccelError::QueueFull { .. }) => {
                    rejected += 1;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected >= 1, "the one-slot queue must shed");
        // Exactly the accepted submissions complete; the rejection never
        // surfaces in the completion channel.
        let mut settled = 0u64;
        while let Ok(completion) = completions.recv_timeout(std::time::Duration::from_secs(60)) {
            completion.result.unwrap();
            settled += 1;
            if settled == accepted {
                break;
            }
        }
        assert_eq!(settled, accepted);
        server.shutdown();
    }

    #[test]
    fn snapshots_and_stats_are_monotone_under_load() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .cycle()
            .take(12)
            .map(|input| server.submit(input.clone()).unwrap())
            .collect();
        // Interleave snapshots with the draining queue: the cumulative
        // counters never step backwards and the live depth stays within the
        // configured bound at every observation.
        let mut last = server.stats();
        for ticket in tickets {
            ticket.wait().unwrap();
            let snapshot = server.queue_snapshot();
            assert!(snapshot.depth <= snapshot.capacity);
            assert_eq!(snapshot.capacity, DEFAULT_QUEUE_CAPACITY);
            let stats = server.stats();
            assert!(stats.completed >= last.completed, "completed is monotone");
            assert!(stats.errors >= last.errors, "errors is monotone");
            assert!(stats.batches >= last.batches, "batches is monotone");
            assert!(stats.rejected >= last.rejected, "rejected is monotone");
            assert!(stats.elapsed_s >= last.elapsed_s, "elapsed is monotone");
            last = stats;
        }
        let final_stats = server.shutdown();
        assert_eq!(final_stats.completed, 12);
    }

    #[test]
    fn zero_max_queue_wait_sheds_everything_before_compute() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_queue_wait: Some(Duration::ZERO),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .take(3)
            .map(|input| server.submit(input.clone()).unwrap())
            .collect();
        for ticket in tickets {
            match ticket.wait() {
                Err(AccelError::DeadlineExceeded { deadline_ms, .. }) => {
                    assert_eq!(deadline_ms, 0);
                }
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.deadline_sheds, 3);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.errors, 0, "sheds are backpressure, not errors");
    }

    #[test]
    fn per_request_deadline_sheds_only_the_impatient_submission() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        // Keep the dispatcher busy so the impatient submission queues.
        let busy = server.submit(inputs[0].clone()).unwrap();
        let impatient = server
            .submit_within(inputs[1].clone(), Some(Duration::ZERO))
            .unwrap();
        let patient = server.submit_within(inputs[2].clone(), None).unwrap();
        busy.wait().unwrap();
        match impatient.wait() {
            Err(AccelError::DeadlineExceeded { .. }) => {}
            // The dispatcher may have drained all three into the first
            // micro-batch before the busy inference even started; in that
            // case nothing waited and nothing sheds.  Accept either, but
            // the patient submission must always complete.
            Ok(_) => {}
            other => panic!("expected DeadlineExceeded or a report, got {other:?}"),
        }
        patient.wait().unwrap();
        server.shutdown();
    }

    #[test]
    fn tagged_deadline_sheds_deliver_a_completion() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start_with(
            AcceleratorConfig::default(),
            model,
            ServerOptions {
                max_queue_wait: Some(Duration::ZERO),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (sink, completions) = CompletionSink::new(Arc::new(|| {}));
        server
            .submit_tagged_within(inputs[0].clone(), 7, &sink, None)
            .unwrap();
        let completion = completions
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("shed submissions still complete through the sink");
        assert_eq!(completion.tag, 7);
        match completion.result {
            Err(AccelError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = server.shutdown();
        assert!(stats.deadline_sheds >= 1);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn engine_panic_fails_one_item_and_the_server_survives() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start(config, model.clone()).unwrap();
        let mut poisoned_values = inputs[0].as_slice().to_vec();
        poisoned_values[0] = poison::pill();
        let poisoned = Tensor::from_vec(vec![1, 12, 12], poisoned_values).unwrap();
        let bad = server.submit(poisoned).unwrap();
        let good = server.submit(inputs[1].clone()).unwrap();
        match bad.wait() {
            Err(AccelError::EnginePanic { context }) => {
                assert!(context.contains("poison pill"), "context: {context}");
            }
            other => panic!("expected EnginePanic, got {other:?}"),
        }
        // The sibling and a fresh submission both complete, bit-exactly.
        let report = good.wait().unwrap();
        let solo = Accelerator::new(config).run(&model, &inputs[1]).unwrap();
        assert_eq!(report, solo);
        let fresh = server.submit(inputs[2].clone()).unwrap();
        fresh.wait().unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.errors, 1, "the panic counts as an error too");
        assert_eq!(stats.completed, 2);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn killed_replica_strands_only_its_requests_while_the_sibling_serves() {
        let (model, inputs) = tiny_setup(3);
        let config = AcceleratorConfig::default();
        let server = StreamServer::start_with(
            config,
            model.clone(),
            ServerOptions {
                replicas: 2,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let mut kill_values = inputs[0].as_slice().to_vec();
        kill_values[0] = poison::kill_pill();
        let kill = Tensor::from_vec(vec![1, 12, 12], kill_values).unwrap();
        let doomed = server.submit(kill).unwrap();
        match doomed.wait() {
            Err(AccelError::ReplicaDown { replica, context }) => {
                assert!(replica < 2, "replica index in range: {replica}");
                assert!(context.contains("dispatcher died"), "context: {context}");
            }
            other => panic!("expected ReplicaDown, got {other:?}"),
        }
        // One replica is gone; the sibling keeps serving, bit-exactly.
        assert_eq!(server.healthy_replicas(), 1);
        let solo = Accelerator::new(config);
        for input in &inputs {
            let report = server.submit(input.clone()).unwrap().wait().unwrap();
            assert_eq!(report, solo.run(&model, input).unwrap());
        }
        let stats = server.shutdown();
        assert_eq!(stats.replicas, 2);
        assert_eq!(stats.healthy_replicas, 1);
        assert_eq!(stats.completed, inputs.len() as u64);
        assert_eq!(
            stats.per_replica.iter().filter(|r| !r.healthy).count(),
            1,
            "exactly one replica died"
        );
        let dead = stats.per_replica.iter().find(|r| !r.healthy).unwrap();
        assert_eq!(dead.queue.depth, 0, "the dead replica was drained");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn killing_the_last_replica_turns_new_submissions_into_serving_errors() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let mut kill_values = inputs[0].as_slice().to_vec();
        kill_values[0] = poison::kill_pill();
        let kill = Tensor::from_vec(vec![1, 12, 12], kill_values).unwrap();
        let doomed = server.submit(kill).unwrap();
        match doomed.wait() {
            Err(AccelError::ReplicaDown { replica: 0, .. }) => {}
            other => panic!("expected ReplicaDown, got {other:?}"),
        }
        assert_eq!(server.healthy_replicas(), 0);
        let snapshot = server.queue_snapshot();
        assert_eq!((snapshot.depth, snapshot.capacity), (0, 0));
        match server.submit(inputs[1].clone()) {
            Err(AccelError::Serving { context }) => {
                assert!(context.contains("down"), "context: {context}");
            }
            other => panic!("expected Serving, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.healthy_replicas, 0);
    }

    #[test]
    fn default_capacity_admits_normal_traffic_without_rejections() {
        let (model, inputs) = tiny_setup(3);
        let server = StreamServer::start(AcceleratorConfig::default(), model).unwrap();
        let served = server.run_all(&inputs).unwrap();
        assert_eq!(served.len(), inputs.len());
        let stats = server.shutdown();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.queue_capacity, DEFAULT_QUEUE_CAPACITY);
    }
}
