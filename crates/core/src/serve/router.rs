//! The admission/routing layer in front of the replica engines.
//!
//! Every submission passes through one `Router`, which places it on a
//! replica by **live queue snapshots**: least queue depth first, recent
//! drain rate as the tiebreak (a faster-draining replica clears the same
//! depth sooner), replica index as the final deterministic tiebreak.
//! Snapshots are taken with `try_lock`, so the router never blocks behind
//! a dispatcher holding its own queue lock; when a replica's lock is
//! contended the router falls back to that replica's **cached** view and
//! marks it stale.  When *no* candidate view is fresh the router goes
//! **sticky** — it prefers the replica it chose last — because stale
//! depths are better tie-broken by locality than trusted as rankings.
//!
//! The placement policy itself is the pure function [`preference_order`]
//! over [`ReplicaView`]s, so property tests drive it with synthetic views
//! (random arrival schedules, stale snapshots, dead replicas) without
//! spinning up servers.
//!
//! Placement is *attempt, then spill*: the router walks the preference
//! order calling each replica's bounded non-blocking enqueue, so a full
//! or just-died replica makes the submission spill to the next candidate.
//! Only when every healthy replica refuses does the caller see
//! [`AccelError::QueueFull`] (aggregated over the healthy replicas), and
//! only when no replica is healthy at all does it see the terminal
//! [`AccelError::Serving`].

use super::replica::{relock, EnqueueRejection, ReplicaShared, Submission};
use crate::{AccelError, Result};
use snn_telemetry::{Outcome, Phase};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What the router knows about one replica at placement time — the input
/// row of the placement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaView {
    /// Replica index (`0..ServerOptions::replicas`).
    pub index: usize,
    /// Whether the replica's dispatcher is alive; dead replicas are never
    /// candidates.
    pub healthy: bool,
    /// Queue depth — live when `fresh`, the last observed value otherwise.
    pub depth: usize,
    /// The replica's configured queue capacity.
    pub capacity: usize,
    /// Recent drain rate in inferences/second (see
    /// [`super::stats::drain_rate`]); `0.0` before anything has settled.
    pub drain_rate_ips: f64,
    /// Whether `depth` was observed under the queue lock during *this*
    /// placement (`false` means the view is a stale cache).
    pub fresh: bool,
}

impl ReplicaView {
    fn is_candidate(&self) -> bool {
        self.healthy && self.depth < self.capacity
    }
}

/// The placement policy: returns the candidate replica indices in the
/// order they should be tried.
///
/// Candidates are the healthy replicas whose (possibly stale) view shows
/// spare capacity, ordered by least depth, then highest drain rate, then
/// lowest index.  When no candidate's view is fresh, `sticky` (the
/// previous choice) is promoted to the front if it is still a candidate:
/// with nothing live to rank by, staying where the last request went
/// beats shuffling on stale numbers.
pub fn preference_order(views: &[ReplicaView], sticky: Option<usize>) -> Vec<usize> {
    let mut order: Vec<usize> = views
        .iter()
        .filter(|v| v.is_candidate())
        .map(|v| v.index)
        .collect();
    order.sort_by(|&a, &b| {
        let (va, vb) = (&views[a], &views[b]);
        va.depth
            .cmp(&vb.depth)
            .then(
                vb.drain_rate_ips
                    .partial_cmp(&va.drain_rate_ips)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.cmp(&b))
    });
    let any_fresh_candidate = views.iter().any(|v| v.is_candidate() && v.fresh);
    if !any_fresh_candidate {
        if let Some(sticky) = sticky {
            if let Some(position) = order.iter().position(|&i| i == sticky) {
                let chosen = order.remove(position);
                order.insert(0, chosen);
            }
        }
    }
    order
}

/// The replica [`preference_order`] would try first, if any.
pub fn choose(views: &[ReplicaView], sticky: Option<usize>) -> Option<usize> {
    preference_order(views, sticky).first().copied()
}

/// The router's memory between placements: the last observed view of each
/// replica (used when a live snapshot is unavailable) and the last
/// placement choice (the sticky anchor).
struct RouterState {
    cached_depth: Vec<usize>,
    cached_rate: Vec<f64>,
    last_choice: Option<usize>,
}

/// Places submissions onto replica engines.  One per server.
pub(crate) struct Router {
    replicas: Vec<Arc<ReplicaShared>>,
    state: Mutex<RouterState>,
    /// Submissions no healthy replica could admit (the server-level
    /// rejected counter).
    pub(crate) rejected: AtomicU64,
}

impl Router {
    pub(crate) fn new(replicas: Vec<Arc<ReplicaShared>>) -> Self {
        let count = replicas.len();
        Router {
            replicas,
            state: Mutex::new(RouterState {
                cached_depth: vec![0; count],
                cached_rate: vec![0.0; count],
                last_choice: None,
            }),
            rejected: AtomicU64::new(0),
        }
    }

    /// Builds the live placement views, refreshing the cache where the
    /// replica locks are uncontended.
    fn observe(&self, state: &mut RouterState) -> Vec<ReplicaView> {
        self.replicas
            .iter()
            .enumerate()
            .map(|(i, replica)| {
                let healthy = replica.healthy.load(Ordering::SeqCst);
                let mut fresh = false;
                if let Ok(queue) = replica.queue.try_lock() {
                    state.cached_depth[i] = queue.jobs.len();
                    fresh = true;
                }
                if let Ok(stats) = replica.stats.try_lock() {
                    state.cached_rate[i] = stats.drain_rate_ips(replica.started);
                }
                ReplicaView {
                    index: i,
                    healthy,
                    depth: state.cached_depth[i],
                    capacity: replica.engine.options.queue_capacity,
                    drain_rate_ips: state.cached_rate[i],
                    fresh,
                }
            })
            .collect()
    }

    /// Routes one submission to a replica, spilling to the next candidate
    /// on a full or dead replica.
    ///
    /// # Errors
    ///
    /// [`AccelError::QueueFull`] when every healthy replica's queue is at
    /// capacity (depth and capacity aggregated over the healthy replicas),
    /// [`AccelError::Serving`] when no replica is healthy.
    pub(crate) fn place(&self, mut submission: Submission) -> Result<()> {
        let mut state = relock(&self.state);
        let mut views = self.observe(&mut state);
        let order = preference_order(&views, state.last_choice);
        for index in order {
            // Record where the placement is going (landing replica wins
            // on spill) and hand the trace over to queue wait — a bounced
            // attempt re-enters routing, accumulating into the same span.
            submission.trace.note_route(index, views[index].depth);
            submission.trace.advance(Phase::QueueWait);
            match self.replicas[index].try_enqueue(submission) {
                Ok(()) => {
                    state.cached_depth[index] += 1;
                    state.last_choice = Some(index);
                    return Ok(());
                }
                Err((returned, EnqueueRejection::Full { queued })) => {
                    submission = returned;
                    submission.trace.advance(Phase::Route);
                    state.cached_depth[index] = queued;
                    views[index].depth = queued;
                }
                Err((returned, EnqueueRejection::Down)) => {
                    submission = returned;
                    submission.trace.advance(Phase::Route);
                    views[index].healthy = false;
                }
            }
        }
        if !views.iter().any(|v| v.healthy) {
            submission.trace.finish(Outcome::Error {
                code: "serving".to_string(),
            });
            return Err(AccelError::Serving {
                context: "all replica engines are down; the server cannot serve until it is \
                          restarted"
                    .to_string(),
            });
        }
        self.rejected.fetch_add(1, Ordering::SeqCst);
        let queued = views.iter().filter(|v| v.healthy).map(|v| v.depth).sum();
        let capacity = views.iter().filter(|v| v.healthy).map(|v| v.capacity).sum();
        submission.trace.finish(Outcome::Rejected {
            scope: "queue".to_string(),
        });
        Err(AccelError::QueueFull { queued, capacity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(index: usize, depth: usize, rate: f64, fresh: bool) -> ReplicaView {
        ReplicaView {
            index,
            healthy: true,
            depth,
            capacity: 16,
            drain_rate_ips: rate,
            fresh,
        }
    }

    #[test]
    fn least_depth_wins() {
        let views = [view(0, 3, 0.0, true), view(1, 1, 0.0, true)];
        assert_eq!(choose(&views, None), Some(1));
        assert_eq!(preference_order(&views, None), vec![1, 0]);
    }

    #[test]
    fn drain_rate_breaks_depth_ties() {
        let views = [view(0, 2, 10.0, true), view(1, 2, 40.0, true)];
        assert_eq!(choose(&views, None), Some(1));
    }

    #[test]
    fn index_breaks_full_ties_deterministically() {
        let views = [view(0, 2, 5.0, true), view(1, 2, 5.0, true)];
        assert_eq!(choose(&views, None), Some(0));
    }

    #[test]
    fn unhealthy_and_full_replicas_are_never_candidates() {
        let mut dead = view(0, 0, 100.0, true);
        dead.healthy = false;
        let mut full = view(1, 16, 100.0, true);
        full.depth = full.capacity;
        let alive = view(2, 9, 0.0, true);
        assert_eq!(preference_order(&[dead, full, alive], None), vec![2]);
        assert_eq!(choose(&[dead, full], None), None);
    }

    #[test]
    fn stale_views_fall_back_to_sticky() {
        // Replica 1 looks shallower, but neither view is fresh: stay with
        // the previous choice instead of trusting stale depths.
        let views = [view(0, 3, 0.0, false), view(1, 1, 0.0, false)];
        assert_eq!(choose(&views, Some(0)), Some(0));
        // With a fresh candidate the ranking wins again.
        let views = [view(0, 3, 0.0, false), view(1, 1, 0.0, true)];
        assert_eq!(choose(&views, Some(0)), Some(1));
        // A sticky replica that is no longer a candidate cannot be chosen.
        let mut dead = view(0, 3, 0.0, false);
        dead.healthy = false;
        let views = [dead, view(1, 1, 0.0, false)];
        assert_eq!(choose(&views, Some(0)), Some(1));
    }
}
