//! Serving statistics: per-replica accumulators, queue snapshots, the
//! windowed drain-rate estimate, and the aggregated [`ServerStats`] view.
//!
//! The drain rate is the router's placement input and the source of every
//! retry-after hint, so its math lives here as the **pure** function
//! [`drain_rate`] — callable without a server, which is how
//! `crates/core/tests/drain_rate_properties.rs` pins it against a
//! hand-stepped model (windowed rate, lifetime fallback, empty-window
//! division).

use crate::report::UnitUtilisation;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How many recent micro-batch completions the drain-rate window keeps
/// (the "recent" in [`QueueSnapshot::drain_rate_ips`]).
pub const DRAIN_WINDOW_BATCHES: usize = 32;

/// Fallback retry hint when a server has not yet drained anything, so no
/// drain rate is measurable (milliseconds).
pub const DEFAULT_RETRY_AFTER_MS: u64 = 100;

/// Upper clamp of [`QueueSnapshot::retry_after_ms`] (one minute).
pub const MAX_RETRY_AFTER_MS: u64 = 60_000;

/// Per-replica cumulative counters, updated by that replica's dispatcher
/// under its stats lock.
pub(crate) struct StatsAccum {
    pub(crate) completed: u64,
    pub(crate) errors: u64,
    pub(crate) batches: u64,
    pub(crate) largest_batch: usize,
    pub(crate) panics: u64,
    pub(crate) deadline_sheds: u64,
    /// `(completion instant, inferences settled)` of the most recent
    /// micro-batches, capped at [`DRAIN_WINDOW_BATCHES`] entries — the
    /// basis of the *recent* drain rate in [`QueueSnapshot`].
    pub(crate) recent: VecDeque<(Instant, u64)>,
}

impl StatsAccum {
    pub(crate) fn new() -> Self {
        StatsAccum {
            completed: 0,
            errors: 0,
            batches: 0,
            largest_batch: 0,
            panics: 0,
            deadline_sheds: 0,
            recent: VecDeque::new(),
        }
    }

    /// The replica's drain rate right now (see [`drain_rate`]).
    pub(crate) fn drain_rate_ips(&self, started: Instant) -> f64 {
        drain_rate(
            &self.recent,
            self.completed + self.errors,
            started.elapsed(),
        )
    }
}

/// Recent drain rate in inferences/second, measured **completion to
/// completion** across the window: the inferences settled after the oldest
/// windowed batch, divided by the span between the oldest and newest batch
/// completions.  Anchoring both ends on completions (rather than on "now")
/// keeps the rate a measure of how fast the dispatcher drains *when it is
/// draining* — an idle lull must not decay it, or the retry-after hints
/// derived from it would balloon after every quiet period.  Falls back to
/// the lifetime average (`lifetime_settled / lifetime_elapsed`) when the
/// window holds fewer than two batches or spans zero time, and to `0.0`
/// when nothing has ever settled.
///
/// `recent` is the window of `(completion instant, inferences settled)`
/// records, oldest first, as maintained by the dispatcher (capped at
/// [`DRAIN_WINDOW_BATCHES`] entries); `lifetime_settled` is the cumulative
/// `completed + errors` count and `lifetime_elapsed` the wall-clock age of
/// the replica.
pub fn drain_rate(
    recent: &VecDeque<(Instant, u64)>,
    lifetime_settled: u64,
    lifetime_elapsed: Duration,
) -> f64 {
    if let (Some(&(oldest, oldest_items)), Some(&(newest, _))) = (recent.front(), recent.back()) {
        let span = newest.duration_since(oldest).as_secs_f64();
        // The oldest record marks the window start; its items settled at
        // (not during) the measured span.
        let items: u64 = recent.iter().map(|&(_, n)| n).sum::<u64>() - oldest_items;
        if span > 0.0 && items > 0 {
            return items as f64 / span;
        }
    }
    let elapsed = lifetime_elapsed.as_secs_f64();
    if elapsed > 0.0 && lifetime_settled > 0 {
        return lifetime_settled as f64 / elapsed;
    }
    0.0
}

/// A cheap point-in-time view of a submission queue's load: how deep it
/// is, how big it may grow, and how fast the dispatcher has recently been
/// draining it.
///
/// Produced per replica and aggregated by
/// [`crate::serve::StreamServer::queue_snapshot`] (short lock holds, no
/// allocation).  This is the signal the router places requests by and a
/// network front-end turns into *retry-after* hints on rejected
/// submissions, closing the loop on the reject-when-full admission policy:
/// a shed client learns not just that the server is full but when capacity
/// is likely to reappear.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueSnapshot {
    /// Submissions currently queued and not yet dispatched.
    pub depth: usize,
    /// Configured queue capacity ([`crate::serve::ServerOptions::queue_capacity`]
    /// per replica; the aggregate snapshot sums the healthy replicas').
    pub capacity: usize,
    /// Recent drain rate in inferences per second: inferences settled
    /// across the last [`DRAIN_WINDOW_BATCHES`] micro-batches divided by
    /// the span between the oldest and newest of those completions — a
    /// completion-to-completion measure, so idle periods do not decay it
    /// (falling back to the lifetime average, and `0.0` before anything
    /// has been served).
    pub drain_rate_ips: f64,
}

impl QueueSnapshot {
    /// Whether the next submission would be rejected.
    pub fn is_full(&self) -> bool {
        self.depth >= self.capacity
    }

    /// Milliseconds a rejected client should wait before retrying: the time
    /// the dispatcher needs to drain the current queue depth at the recent
    /// drain rate, clamped to `1..=`[`MAX_RETRY_AFTER_MS`].
    ///
    /// Returns `0` when the queue is empty (retry immediately) and
    /// [`DEFAULT_RETRY_AFTER_MS`] when no drain rate is measurable yet.
    pub fn retry_after_ms(&self) -> u64 {
        if self.depth == 0 {
            return 0;
        }
        if self.drain_rate_ips <= 0.0 {
            return DEFAULT_RETRY_AFTER_MS;
        }
        let ms = (self.depth as f64 / self.drain_rate_ips * 1000.0).ceil() as u64;
        ms.clamp(1, MAX_RETRY_AFTER_MS)
    }
}

/// One replica engine's slice of the serving statistics — the `replica`
/// label's worth of a Prometheus exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaStats {
    /// Replica index (`0..ServerOptions::replicas`).
    pub index: usize,
    /// `false` once this replica's dispatcher died (a replica-level panic
    /// caught by its supervisor); its queued and in-flight submissions were
    /// settled with [`crate::AccelError::ReplicaDown`] and the router no
    /// longer places work on it.
    pub healthy: bool,
    /// Inferences this replica completed successfully.
    pub completed: u64,
    /// Inferences this replica settled with an error.
    pub errors: u64,
    /// Micro-batches this replica dispatched.
    pub batches: u64,
    /// Largest micro-batch this replica dispatched.
    pub largest_batch: usize,
    /// Engine panics caught at this replica's micro-batch item boundary.
    pub panics: u64,
    /// Submissions this replica shed for an expired queue-wait deadline.
    pub deadline_sheds: u64,
    /// This replica's live queue snapshot.
    pub queue: QueueSnapshot,
}

/// Snapshot of a server's serving statistics, aggregated across replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Inferences completed successfully (summed over replicas).
    pub completed: u64,
    /// Inferences that returned an error (summed over replicas).
    pub errors: u64,
    /// Micro-batches dispatched (summed over replicas).
    pub batches: u64,
    /// Largest micro-batch dispatched so far by any replica.
    pub largest_batch: usize,
    /// Submissions rejected by the bounded-queue admission policy (counted
    /// at the router: a rejection means **every** healthy replica was
    /// full).
    pub rejected: u64,
    /// Engine panics caught at the micro-batch item boundary: each one
    /// failed exactly one inference with [`crate::AccelError::EnginePanic`]
    /// (also counted in `errors`) and left the dispatcher, its batch
    /// siblings and the server running.
    pub panics: u64,
    /// Submissions shed from the queue before compute because their queue
    /// wait reached its deadline (see
    /// [`crate::serve::ServerOptions::max_queue_wait`]); like `rejected`,
    /// these are backpressure and are *not* counted in `errors` or
    /// `completed`.
    pub deadline_sheds: u64,
    /// Aggregated queue-depth / drain-rate snapshot (depths, capacities
    /// and drain rates summed over the healthy replicas).  The drain rate
    /// is windowed over the most recent [`DRAIN_WINDOW_BATCHES`]
    /// micro-batch completions of each replica, measured
    /// completion-to-completion so idle lulls do not decay it; with fewer
    /// than two windowed batches a replica falls back to its lifetime
    /// average.  Across successive snapshots the cumulative counters in
    /// this struct (`completed`, `errors`, `batches`, `rejected`) are
    /// monotone non-decreasing, and `queue.depth` never exceeds
    /// `queue.capacity`.
    pub queue: QueueSnapshot,
    /// Configured micro-batch cap (per replica).
    pub max_batch: usize,
    /// Configured submission-queue capacity **per replica**
    /// ([`crate::serve::ServerOptions::queue_capacity`]); the aggregate
    /// admission capacity is `queue.capacity`.
    pub queue_capacity: usize,
    /// Configured replica count ([`crate::serve::ServerOptions::replicas`]).
    pub replicas: usize,
    /// Replicas whose dispatcher is still alive and accepting placements.
    /// `healthy_replicas < replicas` is the *healthy-but-degraded* state: a
    /// replica died, its in-flight work was settled with typed errors, and
    /// the survivors keep serving.
    pub healthy_replicas: usize,
    /// Per-replica counter slices, indexed by replica.
    pub per_replica: Vec<ReplicaStats>,
    /// Effective global thread budget the server draws from (replicas
    /// partition this between them).
    pub thread_budget: usize,
    /// Wall-clock seconds since the server started.
    pub elapsed_s: f64,
    /// Modelled per-unit busy/idle occupancy of one inference (identical
    /// for every inference of the compiled model, on every replica).
    pub utilisation: Vec<UnitUtilisation>,
}

impl ServerStats {
    /// Completed inferences per wall-clock second since start-up.
    pub fn throughput_ips(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.elapsed_s
    }

    /// Mean micro-batch size (`0.0` before the first batch).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        (self.completed + self.errors) as f64 / self.batches as f64
    }
}
