//! The per-replica engine loop: one bounded submission queue, one
//! dispatcher thread, one share of the global thread budget.
//!
//! A [`crate::serve::StreamServer`] compiles its model **once** and spawns
//! [`crate::serve::ServerOptions::replicas`] of these engines over the
//! shared compiled program — the E3NE scaling move of instantiating
//! multiple inference engines from one compiled network.  Each replica is
//! the old single-engine server in miniature: micro-batch draining,
//! deadline shedding before compute, per-item panic isolation and
//! stats-before-settle ordering all live here, unchanged in behaviour.
//!
//! What is new is the **supervisor**: the dispatcher body runs under
//! `catch_unwind`, so a panic that escapes the per-item guard (a bug in
//! the dispatcher itself, or the fault-injection *kill pill*) takes down
//! only this replica.  The supervisor marks it unhealthy, closes its
//! queue, and settles every queued and in-flight submission with the
//! typed [`AccelError::ReplicaDown`] — clients get an answer, the router
//! stops placing work here, and sibling replicas keep serving.

use super::stats::StatsAccum;
use super::{CompletionSink, ServerOptions};
use crate::compiler::Program;
use crate::exec::ExecOptions;
use crate::report::RunReport;
use crate::sim::Accelerator;
use crate::{AccelError, Result};
use snn_model::snn::SnnModel;
use snn_telemetry::{Outcome, Phase, TraceBuilder};
use snn_tensor::Tensor;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Locks a replica-owned mutex, tolerating poison: a dispatcher that
/// panicked mid-batch leaves its locks poisoned, and the supervisor (and
/// any stats reader) must still be able to walk the wreckage to settle
/// stranded submissions and report counters.
pub(crate) fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Where a settled submission's result goes.
pub(crate) enum ReplyTo {
    /// Per-submission channel behind a [`crate::serve::Ticket`] (blocking
    /// callers).
    Ticket(mpsc::Sender<Result<RunReport>>),
    /// Shared completion queue with a tag (non-blocking callers).
    Sink {
        /// Caller-chosen tag echoed in the completion.
        tag: u64,
        /// The shared sink.
        sink: CompletionSink,
    },
}

/// One queued inference.
pub(crate) struct Submission {
    pub(crate) input: Tensor<f32>,
    pub(crate) reply: ReplyTo,
    /// When the submission entered the queue (the deadline's clock zero).
    pub(crate) enqueued_at: Instant,
    /// Effective queue-wait deadline: the tighter of the per-request
    /// deadline and [`ServerOptions::max_queue_wait`], resolved at
    /// admission.  `None` never expires.
    pub(crate) deadline: Option<Duration>,
    /// The request's span trace, carried with the submission through the
    /// pipeline (builder-owned state: recording a phase boundary takes no
    /// locks).  Finished in [`Submission::settle`]; dropping an unsettled
    /// submission publishes an `abandoned` trace instead of leaking an
    /// open span.
    pub(crate) trace: TraceBuilder,
}

/// Maps an inference result onto the trace's terminal outcome.
fn outcome_of(result: &Result<RunReport>) -> Outcome {
    match result {
        Ok(report) => Outcome::Scores {
            total_cycles: report.total_cycles(),
        },
        Err(AccelError::DeadlineExceeded { .. }) => Outcome::Rejected {
            scope: "deadline".to_string(),
        },
        Err(AccelError::QueueFull { .. }) => Outcome::Rejected {
            scope: "queue".to_string(),
        },
        Err(AccelError::EnginePanic { .. }) => Outcome::Error {
            code: "engine_panic".to_string(),
        },
        Err(AccelError::ReplicaDown { .. }) => Outcome::ReplicaDown,
        Err(AccelError::Serving { .. }) => Outcome::Error {
            code: "serving".to_string(),
        },
        Err(_) => Outcome::Error {
            code: "bad_request".to_string(),
        },
    }
}

impl Submission {
    /// Whether this submission's queue wait has reached its deadline at
    /// `now` (a shed happens strictly before compute, so "reached" — not
    /// "exceeded" — is the boundary: a zero deadline always sheds).
    fn expired_at(&self, now: Instant) -> bool {
        match self.deadline {
            Some(deadline) => now.duration_since(self.enqueued_at) >= deadline,
            None => false,
        }
    }

    /// Delivers `result` to whichever completion path this submission
    /// uses (dropped tickets and closed sinks just mean the client
    /// stopped listening; the waker fires strictly after the send).
    pub(crate) fn settle(mut self, result: Result<RunReport>) {
        // Publish the trace before delivery: a client holding its result
        // is guaranteed to find the completed trace in the recorder.
        self.trace.finish(outcome_of(&result));
        match self.reply {
            ReplyTo::Ticket(reply) => {
                let _ = reply.send(result);
            }
            ReplyTo::Sink { tag, sink } => {
                if sink.sender.send(super::Completion { tag, result }).is_ok() {
                    (sink.waker)();
                }
            }
        }
    }
}

/// A replica's bounded submission queue plus its shutdown latch.
#[derive(Default)]
pub(crate) struct SubmissionQueue {
    pub(crate) jobs: VecDeque<Submission>,
    /// Set on server shutdown — and by the supervisor when this replica
    /// dies, which is what makes a drained replica refuse new placements
    /// without a race: both the drain and every admission hold the queue
    /// lock.
    pub(crate) shutdown: bool,
}

/// The compile-once state every replica shares: one accelerator, one
/// model, one program, one set of options.
pub(crate) struct EngineShared {
    pub(crate) accel: Accelerator,
    pub(crate) model: SnnModel,
    pub(crate) program: Program,
    pub(crate) options: ServerOptions,
}

/// Why [`ReplicaShared::try_enqueue`] refused a submission.
pub(crate) enum EnqueueRejection {
    /// The replica's bounded queue is at capacity; `queued` is the depth
    /// observed under the lock.
    Full {
        /// Undispatched submissions in the queue at rejection time.
        queued: usize,
    },
    /// The replica is shut down or dead and accepts nothing.
    Down,
}

/// One replica engine: queue, dispatcher handshake, stats and health.
pub(crate) struct ReplicaShared {
    /// Replica index (`0..ServerOptions::replicas`), used in error
    /// contexts and stats labels.
    pub(crate) index: usize,
    pub(crate) engine: Arc<EngineShared>,
    pub(crate) queue: Mutex<SubmissionQueue>,
    pub(crate) ready: Condvar,
    pub(crate) stats: Mutex<StatsAccum>,
    /// Cleared by the supervisor when the dispatcher dies; the router
    /// reads it lock-free when building placement views.
    pub(crate) healthy: AtomicBool,
    /// The micro-batch currently executing.  The dispatcher parks each
    /// batch here for the duration of the compute so the supervisor can
    /// settle exactly these submissions if the dispatcher dies mid-batch.
    pub(crate) in_flight: Mutex<Vec<Submission>>,
    pub(crate) started: Instant,
    /// This replica's slice of the global thread budget: micro-batch
    /// workers are capped at this many threads, and the per-call
    /// [`ExecOptions::thread_cap`] passes the same cap down to the
    /// execution engine's stage leases.
    pub(crate) thread_share: usize,
}

impl ReplicaShared {
    pub(crate) fn new(index: usize, engine: Arc<EngineShared>, thread_share: usize) -> Self {
        ReplicaShared {
            index,
            engine,
            queue: Mutex::new(SubmissionQueue::default()),
            ready: Condvar::new(),
            stats: Mutex::new(StatsAccum::new()),
            healthy: AtomicBool::new(true),
            in_flight: Mutex::new(Vec::new()),
            started: Instant::now(),
            thread_share: thread_share.max(1),
        }
    }

    /// Attempts to admit `submission` into this replica's bounded queue.
    /// Never blocks beyond the queue lock; on rejection the submission is
    /// handed back so the router can try a sibling.
    // The Err variant deliberately hands the whole submission back for
    // rerouting; boxing it would buy nothing (the Ok path is the hot one)
    // and cost an allocation per spill-over.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_enqueue(
        &self,
        submission: Submission,
    ) -> std::result::Result<(), (Submission, EnqueueRejection)> {
        {
            let mut queue = relock(&self.queue);
            if queue.shutdown || !self.healthy.load(Ordering::SeqCst) {
                return Err((submission, EnqueueRejection::Down));
            }
            if queue.jobs.len() >= self.engine.options.queue_capacity {
                let queued = queue.jobs.len();
                return Err((submission, EnqueueRejection::Full { queued }));
            }
            queue.jobs.push_back(submission);
        }
        self.ready.notify_one();
        Ok(())
    }

    /// Marks the queue shut down and wakes the dispatcher (server stop).
    pub(crate) fn begin_shutdown(&self) {
        relock(&self.queue).shutdown = true;
        self.ready.notify_all();
    }
}

/// The replica thread body: the dispatch loop under its supervisor.
///
/// A normal return (server shutdown) leaves the replica healthy.  A panic
/// that unwinds out of the dispatch loop — past the per-item guard — is
/// caught here: the replica is marked unhealthy, its queue is closed, and
/// every queued and in-flight submission settles with
/// [`AccelError::ReplicaDown`].  Those settles are supervision, not
/// inference outcomes, so they are **not** counted in the replica's
/// `errors`; the health flag and the typed error carry the story.
pub(crate) fn run(shared: &Arc<ReplicaShared>) {
    let outcome = catch_unwind(AssertUnwindSafe(|| dispatch_loop(shared)));
    if outcome.is_ok() {
        return;
    }
    shared.healthy.store(false, Ordering::SeqCst);
    let queued: Vec<Submission> = {
        let mut queue = relock(&shared.queue);
        queue.shutdown = true;
        queue.jobs.drain(..).collect()
    };
    let in_flight: Vec<Submission> = std::mem::take(&mut *relock(&shared.in_flight));
    let context = format!(
        "replica {} dispatcher died mid-batch; the submission was drained unserved \
         (siblings keep serving — resubmit to be rerouted)",
        shared.index
    );
    for submission in in_flight.into_iter().chain(queued) {
        submission.settle(Err(AccelError::ReplicaDown {
            replica: shared.index,
            context: context.clone(),
        }));
    }
}

fn dispatch_loop(shared: &ReplicaShared) {
    let engine = &shared.engine;
    let max_batch = engine.options.max_batch.max(1);
    let exec = ExecOptions {
        thread_cap: shared.thread_share,
        ..engine.options.exec
    };
    loop {
        // Collect the next micro-batch: everything queued, capped.
        let batch: Vec<Submission> = {
            let mut queue = relock(&shared.queue);
            loop {
                if !queue.jobs.is_empty() {
                    let take = queue.jobs.len().min(max_batch);
                    break queue.jobs.drain(..take).collect();
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };

        // Shed expired entries *before* compute: work the client has
        // already given up on is answered with a typed error at queue
        // cost, not computed late at full cost.
        let now = Instant::now();
        let (mut batch, expired): (Vec<Submission>, Vec<Submission>) =
            batch.into_iter().partition(|s| !s.expired_at(now));
        // Kept submissions leave the queue here: queue_wait ends, batch
        // assembly begins.  (Expired ones finish inside `settle` below —
        // their whole post-admission life was queue wait.)
        for submission in batch.iter_mut() {
            submission.trace.advance(Phase::BatchAssembly);
        }
        if !expired.is_empty() {
            relock(&shared.stats).deadline_sheds += expired.len() as u64;
            for submission in expired {
                let waited_ms = now.duration_since(submission.enqueued_at).as_millis() as u64;
                let deadline_ms = submission
                    .deadline
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0);
                submission.settle(Err(AccelError::DeadlineExceeded {
                    waited_ms,
                    deadline_ms,
                }));
            }
        }
        if batch.is_empty() {
            continue;
        }

        // Park the batch in `in_flight` for the duration of the compute:
        // if anything below unwinds past the per-item guard, the
        // supervisor finds exactly these submissions and settles them.
        let mut in_flight = relock(&shared.in_flight);
        *in_flight = batch;

        // The kill pill is checked *outside* the per-item guard: it
        // models a dispatcher-level crash (not an engine panic), so it
        // unwinds the whole loop into the supervisor.
        #[cfg(feature = "fault-injection")]
        for submission in in_flight.iter() {
            super::poison::check_kill(&submission.input);
        }

        // Compute starts now.  Marked while the in-flight guard is still
        // mutable — `par_map` below borrows the batch immutably.
        for submission in in_flight.iter_mut() {
            submission.trace.advance(Phase::Compute);
        }

        // Execute the micro-batch over this replica's slice of the worker
        // pool.  Each item runs under its own unwind guard: a panicking
        // inference fails only itself with the typed `EnginePanic`, never
        // the dispatcher (snn-parallel would otherwise re-raise the task
        // panic here and kill the serving loop).
        let threads = shared.thread_share.min(in_flight.len());
        let reports = snn_parallel::par_map(&in_flight, threads, |_, submission| {
            snn_parallel::catch_panic_message(|| {
                #[cfg(feature = "fault-injection")]
                super::poison::check(&submission.input);
                engine.accel.execute_compiled(
                    &engine.model,
                    &engine.program,
                    &submission.input,
                    engine.options.mode,
                    exec,
                )
            })
            .unwrap_or_else(|message| Err(AccelError::EnginePanic { context: message }))
        });

        let completed = reports.iter().filter(|r| r.is_ok()).count() as u64;
        let errors = reports.len() as u64 - completed;
        let panics = reports
            .iter()
            .filter(|r| matches!(r, Err(AccelError::EnginePanic { .. })))
            .count() as u64;
        // Count before replying, so a client that has its result in hand
        // is guaranteed to find it reflected in the server statistics.
        {
            let mut accum = relock(&shared.stats);
            accum.completed += completed;
            accum.errors += errors;
            accum.panics += panics;
            accum.batches += 1;
            accum.largest_batch = accum.largest_batch.max((completed + errors) as usize);
            accum.recent.push_back((Instant::now(), completed + errors));
            if accum.recent.len() > super::stats::DRAIN_WINDOW_BATCHES {
                accum.recent.pop_front();
            }
        }
        let batch = std::mem::take(&mut *in_flight);
        drop(in_flight);
        for (submission, report) in batch.into_iter().zip(reports) {
            // Waker strictly after the send (inside `settle`): a reactor
            // woken by the pipe byte must find the completion queued.
            submission.settle(report);
        }
    }
}
