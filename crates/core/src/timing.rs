//! Analytical latency model derived from the loop hierarchy of Alg. 1.
//!
//! The processing units in [`crate::conv`], [`crate::pool`] and
//! [`crate::linear`] derive their cycle counters from the same closed-form
//! expressions this module evaluates (the schedule is static, so counting
//! and predicting coincide exactly — a property the unit tests pin down);
//! this module adds the system-level effects the units cannot see: the
//! division of output channels across multiple
//! convolution units, the packing of several narrow output channels into
//! one unit, the flatten transfer between the 2-D and 1-D buffers, and the
//! DRAM weight-fetch time for models that do not fit on chip.
//!
//! The model reproduces the latency *trends* of the paper:
//!
//! * latency scales linearly with the spike-train length `T` (Table I),
//! * duplicating convolution units reduces latency sub-linearly because the
//!   pooling and linear stages are not duplicated (Table II).

use crate::config::{AcceleratorConfig, MemoryOption};
use crate::conv::ConvolutionUnit;
use crate::linear::LinearUnit;
use crate::memory::DramModel;
use crate::pool::PoolingUnit;
use crate::{AccelError, Result};
use serde::{Deserialize, Serialize};
use snn_model::{LayerSpec, NetworkSpec};

/// The kind of processing stage a layer maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// Executed on the convolution units.
    Convolution,
    /// Executed on the pooling unit.
    Pooling,
    /// Buffer transfer from the 2-D to the 1-D ping-pong memory.
    Flatten,
    /// Executed on the linear unit.
    Linear,
}

/// Predicted timing of a single layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Index of the layer in the network.
    pub layer: usize,
    /// Which processing stage executes it.
    pub kind: StageKind,
    /// Cycles spent computing.
    pub compute_cycles: u64,
    /// Cycles spent fetching weights from DRAM before the layer starts
    /// (zero for on-chip weight storage).
    pub weight_fetch_cycles: u64,
}

impl LayerTiming {
    /// Total cycles contributed by this layer.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.weight_fetch_cycles
    }
}

/// Predicted timing of a whole network execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Per-layer breakdown.
    pub layers: Vec<LayerTiming>,
    /// Spike-train length the prediction was made for.
    pub time_steps: usize,
}

impl TimingReport {
    /// Total cycles for one inference.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.total_cycles()).sum()
    }

    /// Total cycles spent on convolution layers only.
    pub fn convolution_cycles(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.kind == StageKind::Convolution)
            .map(|l| l.total_cycles())
            .sum()
    }

    /// Latency in microseconds at the configured clock.
    pub fn latency_us(&self, config: &AcceleratorConfig) -> f64 {
        config.cycles_to_us(self.total_cycles())
    }

    /// Throughput in frames per second assuming back-to-back inferences.
    pub fn throughput_fps(&self, config: &AcceleratorConfig) -> f64 {
        1.0e6 / self.latency_us(config)
    }
}

/// How many output channels one convolution unit can process concurrently
/// for an output row of `w_out` values: multiple output channels share a
/// unit if their rows fit side by side in the X adder columns.
pub fn channels_per_conv_unit(config: &AcceleratorConfig, w_out: usize) -> usize {
    if w_out == 0 {
        return 1;
    }
    (config.conv_geometry.columns / w_out).max(1)
}

/// How a convolution layer's output channels are scheduled across the
/// convolution units, including the **straggler group** that arises when
/// `c_out` is not a multiple of `units * channels_per_unit`.
///
/// Every group costs the same `per_group_cycles` regardless of how many
/// channels it carries (a pass streams all input rows through the adder
/// array whether one channel or all of them are mapped), so the layer
/// *makespan* is exactly `groups * per_group_cycles` — the straggler does
/// not stretch it.  What the perfectly-balanced assumption got wrong is
/// the **unit occupancy**: during the straggler pass only
/// `ceil(straggler_channels / channels_per_unit)` units compute and the
/// rest idle, which [`ConvGroupPlan::busy_unit_cycles`] and
/// [`ConvGroupPlan::unit_utilisation`] now model.  This is what makes the
/// pipelined executor's per-unit utilisation reports honest at uneven
/// splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvGroupPlan {
    /// Number of convolution units instantiated.
    pub conv_units: usize,
    /// Output channels that share one unit (rows packed side by side).
    pub channels_per_unit: usize,
    /// Sequential channel groups (passes), including the straggler.
    pub groups: usize,
    /// Channels in the final group when it is not full (`0` when the split
    /// is perfectly balanced).
    pub straggler_channels: usize,
    /// Cycles of one group pass (independent of the group's occupancy).
    pub per_group_cycles: u64,
}

impl ConvGroupPlan {
    /// Builds the schedule for one convolution layer on `config`.
    pub fn plan(
        config: &AcceleratorConfig,
        c_in: usize,
        c_out: usize,
        h_out: usize,
        w_out: usize,
        kernel: usize,
        time_steps: usize,
    ) -> Self {
        let unit = ConvolutionUnit::new(config.conv_geometry);
        // Work for a single output channel on a single unit.
        let per_group_cycles = unit.layer_cycles(c_in, 1, h_out, w_out, kernel, time_steps);
        let channels_per_unit = channels_per_conv_unit(config, w_out);
        Self::for_schedule(
            config.conv_units,
            channels_per_unit,
            c_out,
            per_group_cycles,
        )
    }

    /// Builds the schedule from already-computed quantities (used by the
    /// execution engine, which reads them off a compiled program step).
    pub fn for_schedule(
        conv_units: usize,
        channels_per_unit: usize,
        c_out: usize,
        per_group_cycles: u64,
    ) -> Self {
        let conv_units = conv_units.max(1);
        let channels_per_unit = channels_per_unit.max(1);
        let parallel = conv_units * channels_per_unit;
        ConvGroupPlan {
            conv_units,
            channels_per_unit,
            groups: c_out.div_ceil(parallel).max(1),
            straggler_channels: c_out % parallel,
            per_group_cycles,
        }
    }

    /// Units that compute during the straggler pass (`conv_units` when the
    /// split is balanced).
    pub fn active_units_in_straggler(&self) -> usize {
        if self.straggler_channels == 0 {
            self.conv_units
        } else {
            self.straggler_channels
                .div_ceil(self.channels_per_unit)
                .min(self.conv_units)
        }
    }

    /// Wall-clock cycles of the layer: every pass costs the same whether
    /// full or straggling.
    pub fn latency_cycles(&self) -> u64 {
        self.groups as u64 * self.per_group_cycles
    }

    /// Unit-cycles actually spent computing, counting only the active
    /// units of the straggler pass.
    pub fn busy_unit_cycles(&self) -> u64 {
        let full_groups = if self.straggler_channels == 0 {
            self.groups
        } else {
            self.groups - 1
        };
        let active = full_groups * self.conv_units
            + if self.straggler_channels == 0 {
                0
            } else {
                self.active_units_in_straggler()
            };
        active as u64 * self.per_group_cycles
    }

    /// Fraction of the available unit-cycles spent computing over the
    /// layer (`1.0` for a perfectly balanced split).
    pub fn unit_utilisation(&self) -> f64 {
        let available = (self.groups * self.conv_units) as u64 * self.per_group_cycles;
        if available == 0 {
            return 0.0;
        }
        self.busy_unit_cycles() as f64 / available as f64
    }
}

/// Latency in cycles of one convolution layer on the configured accelerator.
pub fn conv_layer_latency(
    config: &AcceleratorConfig,
    c_in: usize,
    c_out: usize,
    h_out: usize,
    w_out: usize,
    kernel: usize,
    time_steps: usize,
) -> u64 {
    ConvGroupPlan::plan(config, c_in, c_out, h_out, w_out, kernel, time_steps).latency_cycles()
}

/// Latency in cycles of one pooling layer (the pooling unit is not
/// duplicated).
pub fn pool_layer_latency(
    config: &AcceleratorConfig,
    channels: usize,
    h_out: usize,
    w_out: usize,
    window: usize,
    time_steps: usize,
) -> u64 {
    PoolingUnit::new(config.pool_geometry).layer_cycles(channels, h_out, w_out, window, time_steps)
}

/// Latency in cycles of one fully-connected layer.
pub fn linear_layer_latency(
    config: &AcceleratorConfig,
    inputs: usize,
    outputs: usize,
    time_steps: usize,
) -> u64 {
    LinearUnit::new(config.linear_lanes).layer_cycles(inputs, outputs, time_steps)
}

/// Latency in cycles of the flatten step: the feature maps are read out of
/// the 2-D buffer and written into the 1-D buffer one value per cycle.
pub fn flatten_latency(volume: usize) -> u64 {
    volume as u64
}

/// Predicts the per-layer and total latency of a network on the configured
/// accelerator.
///
/// # Errors
///
/// Returns [`AccelError::UnsupportedLayer`] when a convolution kernel has
/// more rows than the configured adder array.
pub fn network_timing(
    config: &AcceleratorConfig,
    net: &NetworkSpec,
    time_steps: usize,
) -> Result<TimingReport> {
    config.validate()?;
    let dram = DramModel::from_config(config);
    let mut layers = Vec::with_capacity(net.layers().len());
    for (i, layer) in net.layers().iter().enumerate() {
        let out_shape = net.layer_output_shape(i);
        let in_shape = net.layer_input_shape(i);
        let weight_bits = layer.parameter_count() as u64 * config.weight_bits as u64;
        let weight_fetch_cycles = match config.memory {
            MemoryOption::OnChip => 0,
            MemoryOption::Dram => dram.transfer_cycles(weight_bits),
        };
        let timing = match *layer {
            LayerSpec::Conv2d {
                in_channels,
                out_channels,
                kernel,
                ..
            } => {
                if kernel > config.conv_geometry.rows {
                    return Err(AccelError::UnsupportedLayer {
                        layer: i,
                        context: format!(
                            "kernel of {kernel} rows exceeds the {}-row adder array",
                            config.conv_geometry.rows
                        ),
                    });
                }
                LayerTiming {
                    layer: i,
                    kind: StageKind::Convolution,
                    compute_cycles: conv_layer_latency(
                        config,
                        in_channels,
                        out_channels,
                        out_shape[1],
                        out_shape[2],
                        kernel,
                        time_steps,
                    ),
                    weight_fetch_cycles,
                }
            }
            LayerSpec::Pool { window, .. } => LayerTiming {
                layer: i,
                kind: StageKind::Pooling,
                compute_cycles: pool_layer_latency(
                    config,
                    out_shape[0],
                    out_shape[1],
                    out_shape[2],
                    window,
                    time_steps,
                ),
                weight_fetch_cycles: 0,
            },
            LayerSpec::Flatten => LayerTiming {
                layer: i,
                kind: StageKind::Flatten,
                compute_cycles: flatten_latency(in_shape.iter().product()),
                weight_fetch_cycles: 0,
            },
            LayerSpec::Linear {
                in_features,
                out_features,
            } => LayerTiming {
                layer: i,
                kind: StageKind::Linear,
                compute_cycles: linear_layer_latency(config, in_features, out_features, time_steps),
                weight_fetch_cycles,
            },
        };
        layers.push(timing);
    }
    Ok(TimingReport { layers, time_steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use snn_model::zoo;

    #[test]
    fn lenet_latency_scales_linearly_with_time_steps() {
        let cfg = AcceleratorConfig::lenet_experiment(2);
        let net = zoo::lenet5();
        let t3 = network_timing(&cfg, &net, 3).unwrap().total_cycles();
        let t6 = network_timing(&cfg, &net, 6).unwrap().total_cycles();
        // Almost all computation is replicated per time step; only the
        // flatten transfer is independent of T.
        let ratio = t6 as f64 / t3 as f64;
        assert!(
            (1.8..2.1).contains(&ratio),
            "T=6 / T=3 latency ratio was {ratio}"
        );
    }

    #[test]
    fn doubling_conv_units_gives_sublinear_speedup() {
        let net = zoo::lenet5();
        let lat = |units: usize| {
            network_timing(&AcceleratorConfig::lenet_experiment(units), &net, 3)
                .unwrap()
                .total_cycles()
        };
        let l1 = lat(1);
        let l2 = lat(2);
        let l4 = lat(4);
        let l8 = lat(8);
        // More units is never slower...
        assert!(l2 < l1 && l4 < l2 && l8 <= l4);
        // ...but the speedup saturates because pooling and linear stages are
        // not duplicated (Table II's observation).
        assert!((l1 as f64 / l2 as f64) < 2.0);
        assert!((l4 as f64 / l8 as f64) < (l1 as f64 / l2 as f64));
    }

    #[test]
    fn conv_dominates_lenet_runtime_at_one_unit() {
        let cfg = AcceleratorConfig::lenet_experiment(1);
        let net = zoo::lenet5();
        let report = network_timing(&cfg, &net, 3).unwrap();
        assert!(report.convolution_cycles() * 2 > report.total_cycles());
    }

    #[test]
    fn channels_per_unit_matches_paper_intent() {
        // Default geometry has X = 30.
        let cfg = AcceleratorConfig::default();
        // A 28-wide output row fills the unit: one channel at a time.
        assert_eq!(channels_per_conv_unit(&cfg, 28), 1);
        // A 10-wide row lets three channels share the unit.
        assert_eq!(channels_per_conv_unit(&cfg, 10), 3);
        // A 1x1 output (LeNet's third conv) packs 30 channels.
        assert_eq!(channels_per_conv_unit(&cfg, 1), 30);
    }

    #[test]
    fn straggler_group_is_modelled_at_uneven_splits() {
        // 7 output channels over 2 units x 3 channels each: two passes, the
        // second carrying a single channel on a single unit.
        let plan = ConvGroupPlan::for_schedule(2, 3, 7, 100);
        assert_eq!(plan.groups, 2);
        assert_eq!(plan.straggler_channels, 1);
        assert_eq!(plan.active_units_in_straggler(), 1);
        // The makespan is unchanged — a straggling pass costs a full pass —
        // but only 3 of the 4 (unit, pass) slots compute.
        assert_eq!(plan.latency_cycles(), 200);
        assert_eq!(plan.busy_unit_cycles(), 300);
        assert!((plan.unit_utilisation() - 0.75).abs() < 1e-12);

        // 4 straggler channels over 2 units x 3: both units stay active.
        let plan = ConvGroupPlan::for_schedule(2, 3, 10, 100);
        assert_eq!(plan.groups, 2);
        assert_eq!(plan.straggler_channels, 4);
        assert_eq!(plan.active_units_in_straggler(), 2);
        assert_eq!(plan.busy_unit_cycles(), 400);
        assert!((plan.unit_utilisation() - 1.0).abs() < 1e-12);

        // A perfectly balanced split reports full utilisation.
        let plan = ConvGroupPlan::for_schedule(2, 3, 12, 100);
        assert_eq!(plan.straggler_channels, 0);
        assert_eq!(plan.active_units_in_straggler(), 2);
        assert!((plan.unit_utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn group_plan_latency_matches_conv_layer_latency() {
        let cfg = AcceleratorConfig::lenet_experiment(4);
        // LeNet conv2: 6 -> 16 channels, 10x10 output, 5x5 kernel.
        let plan = ConvGroupPlan::plan(&cfg, 6, 16, 10, 10, 5, 4);
        assert_eq!(
            plan.latency_cycles(),
            conv_layer_latency(&cfg, 6, 16, 10, 10, 5, 4)
        );
        // X = 30 packs three 10-wide channels per unit; 4 units give
        // parallel = 12, so 16 channels split 12 + 4: the straggler pass
        // occupies only ceil(4 / 3) = 2 of the 4 units.
        assert_eq!(plan.channels_per_unit, 3);
        assert_eq!(plan.groups, 2);
        assert_eq!(plan.straggler_channels, 4);
        assert_eq!(plan.active_units_in_straggler(), 2);
        assert!(plan.unit_utilisation() < 1.0);
    }

    #[test]
    fn dram_memory_option_adds_weight_fetch_time() {
        let net = zoo::lenet5();
        let mut on_chip = AcceleratorConfig::lenet_experiment(2);
        on_chip.memory = MemoryOption::OnChip;
        let mut dram = AcceleratorConfig::lenet_experiment(2);
        dram.memory = MemoryOption::Dram;
        let t_on = network_timing(&on_chip, &net, 3).unwrap().total_cycles();
        let t_dram = network_timing(&dram, &net, 3).unwrap().total_cycles();
        assert!(t_dram > t_on);
    }

    #[test]
    fn oversized_kernel_is_reported_with_layer_index() {
        let mut cfg = AcceleratorConfig::default();
        cfg.conv_geometry.rows = 3; // LeNet needs 5 rows
        let err = network_timing(&cfg, &zoo::lenet5(), 3).unwrap_err();
        match err {
            AccelError::UnsupportedLayer { layer, .. } => assert_eq!(layer, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lenet_latency_is_in_the_paper_ballpark() {
        // Table I: T=5, two convolution units, 100 MHz -> 1063 us.
        // The analytical model is not expected to match exactly, but it
        // should land within a factor of two.
        let cfg = AcceleratorConfig::lenet_experiment(2);
        let report = network_timing(&cfg, &zoo::lenet5(), 5).unwrap();
        let us = report.latency_us(&cfg);
        assert!(
            (400.0..2200.0).contains(&us),
            "LeNet-5 latency prediction {us} us is out of the expected range"
        );
    }

    #[test]
    fn throughput_is_inverse_latency() {
        let cfg = AcceleratorConfig::lenet_table3();
        let report = network_timing(&cfg, &zoo::lenet5(), 4).unwrap();
        let fps = report.throughput_fps(&cfg);
        let us = report.latency_us(&cfg);
        assert!((fps * us / 1e6 - 1.0).abs() < 1e-9);
    }
}
