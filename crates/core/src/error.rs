use std::fmt;

/// Errors produced by the accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccelError {
    /// The accelerator configuration is invalid (e.g. zero convolution
    /// units).
    InvalidConfig {
        /// Human-readable description.
        context: String,
    },
    /// The network cannot be mapped onto the configured accelerator.
    UnsupportedLayer {
        /// Index of the offending layer.
        layer: usize,
        /// Human-readable description.
        context: String,
    },
    /// An error bubbled up from the model crate.
    Model(snn_model::ModelError),
    /// An error bubbled up from the tensor substrate.
    Tensor(snn_tensor::TensorError),
    /// The streaming server could not complete a request (e.g. it was shut
    /// down while inferences were still queued).
    Serving {
        /// Human-readable description.
        context: String,
    },
    /// The activation-buffer budget is too small to hold even the smallest
    /// possible tile of a layer (one output row of a convolution/pooling
    /// layer, or one lane group of a fully-connected layer, plus the input
    /// tile it needs).
    BufferBudget {
        /// Index of the layer that does not fit.
        layer: usize,
        /// Bytes the smallest tile of that layer requires.
        required_bytes: u64,
        /// The configured budget in bytes.
        budget_bytes: u64,
    },
    /// The streaming server's bounded submission queue was full and the
    /// admission policy rejected the request (see
    /// [`crate::serve::ServerOptions::queue_capacity`]).
    QueueFull {
        /// Submissions waiting in the queue when the request arrived.
        queued: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The execution engine panicked while computing this inference.  The
    /// dispatcher catches the unwind at the micro-batch item boundary, so
    /// only the poisoned submission fails — sibling items in the same
    /// batch and the server itself keep running (counted in
    /// [`crate::serve::ServerStats::panics`]).
    EnginePanic {
        /// The panic payload's message, when it carried one.
        context: String,
    },
    /// The submission waited in the queue past its deadline and was shed
    /// *before* compute (see
    /// [`crate::serve::ServerOptions::max_queue_wait`] and the deadline
    /// parameter of [`crate::serve::StreamServer::submit_within`]).
    /// Shedding stale work is graceful degradation, not failure: like
    /// [`AccelError::QueueFull`] this is backpressure and clients should
    /// back off and resubmit (counted in
    /// [`crate::serve::ServerStats::deadline_sheds`]).
    DeadlineExceeded {
        /// How long the submission sat in the queue, in milliseconds.
        waited_ms: u64,
        /// The deadline it missed, in milliseconds after submission.
        deadline_ms: u64,
    },
    /// The replica engine this submission was placed on died before
    /// serving it: its dispatcher panicked outside the per-item guard, the
    /// supervisor marked it unhealthy and settled every queued and
    /// in-flight submission with this error.  Sibling replicas keep
    /// serving (see [`crate::serve::ServerStats::healthy_replicas`]), so a
    /// resubmission is rerouted to a healthy replica — but unlike
    /// [`AccelError::QueueFull`] this is a failure, not backpressure: the
    /// inference was admitted and then lost.
    ReplicaDown {
        /// Index of the replica that died.
        replica: usize,
        /// Human-readable description.
        context: String,
    },
}

impl AccelError {
    /// Whether this error is *load shedding* rather than failure: the
    /// request was well-formed but the server chose not to admit it right
    /// now.  Transport layers map these to typed REJECTED replies with a
    /// retry-after hint instead of error replies, and clients should back
    /// off and retry rather than give up.
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self,
            AccelError::QueueFull { .. } | AccelError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::InvalidConfig { context } => {
                write!(f, "invalid accelerator configuration: {context}")
            }
            AccelError::UnsupportedLayer { layer, context } => {
                write!(f, "layer {layer} cannot be mapped: {context}")
            }
            AccelError::Model(e) => write!(f, "model error: {e}"),
            AccelError::Tensor(e) => write!(f, "tensor error: {e}"),
            AccelError::Serving { context } => write!(f, "serving error: {context}"),
            AccelError::BufferBudget {
                layer,
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "layer {layer} needs at least {required_bytes} activation-buffer bytes \
                 but the budget is {budget_bytes}"
            ),
            AccelError::QueueFull { queued, capacity } => write!(
                f,
                "submission queue is full ({queued} queued, capacity {capacity})"
            ),
            AccelError::EnginePanic { context } => {
                write!(f, "execution engine panicked: {context}")
            }
            AccelError::DeadlineExceeded {
                waited_ms,
                deadline_ms,
            } => write!(
                f,
                "request shed before compute: waited {waited_ms} ms in the queue, \
                 deadline was {deadline_ms} ms"
            ),
            AccelError::ReplicaDown { replica, context } => {
                write!(f, "replica {replica} is down: {context}")
            }
        }
    }
}

impl std::error::Error for AccelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccelError::Model(e) => Some(e),
            AccelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<snn_model::ModelError> for AccelError {
    fn from(e: snn_model::ModelError) -> Self {
        AccelError::Model(e)
    }
}

impl From<snn_tensor::TensorError> for AccelError {
    fn from(e: snn_tensor::TensorError) -> Self {
        AccelError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let err = AccelError::InvalidConfig {
            context: "zero convolution units".into(),
        };
        assert!(err.to_string().contains("zero convolution units"));
    }

    #[test]
    fn only_shedding_errors_are_backpressure() {
        assert!(AccelError::QueueFull {
            queued: 4,
            capacity: 4
        }
        .is_backpressure());
        assert!(AccelError::DeadlineExceeded {
            waited_ms: 40,
            deadline_ms: 10
        }
        .is_backpressure());
        assert!(!AccelError::Serving {
            context: "shutting down".into()
        }
        .is_backpressure());
        assert!(!AccelError::InvalidConfig {
            context: "nope".into()
        }
        .is_backpressure());
        assert!(!AccelError::EnginePanic {
            context: "index out of bounds".into()
        }
        .is_backpressure());
        // A dead replica lost admitted work; retrying blindly without
        // rerouting would be wrong, so it is a failure, not backpressure.
        assert!(!AccelError::ReplicaDown {
            replica: 1,
            context: "dispatcher died".into()
        }
        .is_backpressure());
    }

    #[test]
    fn panic_and_deadline_display_their_evidence() {
        let panic = AccelError::EnginePanic {
            context: "poisoned input".into(),
        };
        assert!(panic.to_string().contains("panicked"));
        assert!(panic.to_string().contains("poisoned input"));
        let shed = AccelError::DeadlineExceeded {
            waited_ms: 120,
            deadline_ms: 50,
        };
        assert!(shed.to_string().contains("120 ms"));
        assert!(shed.to_string().contains("50 ms"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AccelError>();
    }
}
