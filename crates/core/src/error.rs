use std::fmt;

/// Errors produced by the accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccelError {
    /// The accelerator configuration is invalid (e.g. zero convolution
    /// units).
    InvalidConfig {
        /// Human-readable description.
        context: String,
    },
    /// The network cannot be mapped onto the configured accelerator.
    UnsupportedLayer {
        /// Index of the offending layer.
        layer: usize,
        /// Human-readable description.
        context: String,
    },
    /// An error bubbled up from the model crate.
    Model(snn_model::ModelError),
    /// An error bubbled up from the tensor substrate.
    Tensor(snn_tensor::TensorError),
    /// The streaming server could not complete a request (e.g. it was shut
    /// down while inferences were still queued).
    Serving {
        /// Human-readable description.
        context: String,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::InvalidConfig { context } => {
                write!(f, "invalid accelerator configuration: {context}")
            }
            AccelError::UnsupportedLayer { layer, context } => {
                write!(f, "layer {layer} cannot be mapped: {context}")
            }
            AccelError::Model(e) => write!(f, "model error: {e}"),
            AccelError::Tensor(e) => write!(f, "tensor error: {e}"),
            AccelError::Serving { context } => write!(f, "serving error: {context}"),
        }
    }
}

impl std::error::Error for AccelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccelError::Model(e) => Some(e),
            AccelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<snn_model::ModelError> for AccelError {
    fn from(e: snn_model::ModelError) -> Self {
        AccelError::Model(e)
    }
}

impl From<snn_tensor::TensorError> for AccelError {
    fn from(e: snn_tensor::TensorError) -> Self {
        AccelError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let err = AccelError::InvalidConfig {
            context: "zero convolution units".into(),
        };
        assert!(err.to_string().contains("zero convolution units"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AccelError>();
    }
}
