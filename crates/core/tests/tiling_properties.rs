//! Properties of the tiled activation-buffer execution path.
//!
//! The contract under test: with
//! [`AcceleratorConfig::activation_buffer_bytes`] set, every layer whose
//! working set exceeds the budget executes in row-band tiles (lane-aligned
//! output chunks for fully-connected layers), and the resulting
//! [`RunReport`] — accumulators, per-layer `UnitStats`, traffic and
//! utilisation — is **bit-identical** to the untiled sequential oracle.
//! The edge cases the planner must survive: tile heights smaller than the
//! kernel halo, strides crossing tile boundaries, budgets too small for a
//! single row (a typed error at compile time), and batched execution.

use snn_accel::config::AcceleratorConfig;
use snn_accel::memory::{self, LayerTiling};
use snn_accel::sim::Accelerator;
use snn_accel::AccelError;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::{zoo, LayerSpec, NetworkSpec};
use snn_tensor::Tensor;

fn converted(net: &NetworkSpec, time_steps: usize, inputs: &[Tensor<f32>]) -> SnnModel {
    let params = Parameters::he_init(net, 7).unwrap();
    let stats = CalibrationStats::collect(net, &params, inputs.iter()).unwrap();
    convert(
        net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps,
        },
    )
    .unwrap()
}

fn tiny_setup(time_steps: usize) -> (SnnModel, Vec<Tensor<f32>>) {
    let net = zoo::tiny_cnn();
    let inputs: Vec<Tensor<f32>> = (0..4)
        .map(|i| {
            let values: Vec<f32> = (0..144)
                .map(|j| ((i * 29 + j * 13) % 100) as f32 / 100.0)
                .collect();
            Tensor::from_vec(vec![1, 12, 12], values).unwrap()
        })
        .collect();
    let model = converted(&net, time_steps, &inputs);
    (model, inputs)
}

fn tiled_config(budget: u64) -> AcceleratorConfig {
    AcceleratorConfig {
        activation_buffer_bytes: Some(budget),
        ..AcceleratorConfig::default()
    }
}

#[test]
fn tiled_run_is_bit_identical_to_the_untiled_sequential_oracle() {
    let (model, inputs) = tiny_setup(4);
    // 128 B forces multi-band tiling of both the convolution (4-row bands,
    // pool-aligned) and the pooling layer; 66 B is close to the floor.
    for budget in [128u64, 66] {
        let tiled = Accelerator::new(tiled_config(budget));
        let untiled = Accelerator::new(AcceleratorConfig::default());
        for input in &inputs {
            let tiled_report = tiled.run(&model, input).unwrap();
            let oracle = untiled.run_sequential(&model, input).unwrap();
            assert_eq!(tiled_report, oracle, "budget={budget}");
            // The tiled sequential path agrees too (no fused streaming).
            let tiled_sequential = tiled.run_sequential(&model, input).unwrap();
            assert_eq!(tiled_sequential, oracle, "budget={budget}");
            // Transaction level ignores tiling but must stay consistent.
            let fast = tiled.run_fast(&model, input).unwrap();
            assert_eq!(fast.logits, oracle.logits, "budget={budget}");
            assert_eq!(fast.total_cycles(), oracle.total_cycles());
        }
    }
}

#[test]
fn tiled_fused_pair_streams_row_bands() {
    let (model, inputs) = tiny_setup(4);
    let config = tiled_config(128);
    let program = Accelerator::new(config).compile(&model).unwrap();
    // The conv layer must actually be tiled into pool-aligned bands …
    match &program.steps[0].tiling {
        Some(LayerTiling::RowBands {
            bands,
            rows_per_tile,
        }) => {
            assert!(bands.len() > 1);
            assert_eq!(rows_per_tile % 2, 0, "bands must align to the 2x2 pool");
        }
        other => panic!("conv layer should be row-band tiled, got {other:?}"),
    }
    // … and the pooling layer too (it exceeds the budget on its own).
    assert!(program.steps[1].tiling.is_some());
    // Pipelined (fused, band-streaming) equals the sequential tiled path.
    let accel = Accelerator::new(config);
    for input in &inputs {
        let pipelined = accel.run(&model, input).unwrap();
        let sequential = accel.run_sequential(&model, input).unwrap();
        assert_eq!(pipelined, sequential);
    }
}

#[test]
fn untiled_conv_feeding_a_tiled_pool_respects_the_budget_model() {
    // The conv fits untiled but its pooling consumer does not: the fused
    // path must not stream whole-height channel groups (a working set the
    // tile plan ruled out), so the pair falls back to the sequential
    // tiled stages — still bit-identical to the oracle.
    let net = NetworkSpec::new(
        "wide-conv-pool",
        vec![1, 12, 12],
        vec![
            LayerSpec::conv(1, 16, 3),
            LayerSpec::avg_pool2(),
            LayerSpec::Flatten,
            LayerSpec::linear(16 * 5 * 5, 10),
        ],
    )
    .unwrap();
    let inputs: Vec<Tensor<f32>> = (0..3)
        .map(|i| {
            let values: Vec<f32> = (0..144)
                .map(|j| ((i * 41 + j * 17) % 100) as f32 / 100.0)
                .collect();
            Tensor::from_vec(vec![1, 12, 12], values).unwrap()
        })
        .collect();
    let model = converted(&net, 4, &inputs);
    let config = tiled_config(900);
    let program = Accelerator::new(config).compile(&model).unwrap();
    assert!(program.steps[0].tiling.is_none(), "conv fits untiled");
    assert!(program.steps[1].tiling.is_some(), "pool must be tiled");
    let tiled = Accelerator::new(config);
    let untiled = Accelerator::new(AcceleratorConfig::default());
    for input in &inputs {
        let report = tiled.run(&model, input).unwrap();
        let oracle = untiled.run_sequential(&model, input).unwrap();
        assert_eq!(report, oracle);
    }
}

#[test]
fn strides_crossing_tile_boundaries_do_not_change_results() {
    // A stride-2 padded convolution: interior bands start mid-stride, so
    // band coverage must reproduce the exact (input row -> output row)
    // pairs of the untiled layer.
    let net = NetworkSpec::new(
        "stride-net",
        vec![1, 13, 13],
        vec![
            LayerSpec::Conv2d {
                in_channels: 1,
                out_channels: 3,
                kernel: 3,
                stride: 2,
                padding: 1,
            },
            LayerSpec::Flatten,
            LayerSpec::linear(3 * 7 * 7, 8),
        ],
    )
    .unwrap();
    let inputs: Vec<Tensor<f32>> = (0..3)
        .map(|i| {
            let values: Vec<f32> = (0..169)
                .map(|j| ((i * 37 + j * 11) % 100) as f32 / 100.0)
                .collect();
            Tensor::from_vec(vec![1, 13, 13], values).unwrap()
        })
        .collect();
    let model = converted(&net, 3, &inputs);
    let tiled = Accelerator::new(tiled_config(60));
    let untiled = Accelerator::new(AcceleratorConfig::default());
    // The budget really forces bands whose input windows overlap.
    let program = tiled.compile(&model).unwrap();
    let Some(LayerTiling::RowBands { bands, .. }) = &program.steps[0].tiling else {
        panic!("stride conv should be tiled");
    };
    assert!(bands.len() > 1);
    for input in &inputs {
        let tiled_report = tiled.run(&model, input).unwrap();
        let oracle = untiled.run_sequential(&model, input).unwrap();
        assert_eq!(tiled_report, oracle);
    }
}

#[test]
fn planner_handles_tiles_shorter_than_the_kernel_halo() {
    // One-row bands under a 5x5 kernel: each band's input halo spans four
    // more rows than the band itself.
    let net =
        NetworkSpec::new("halo-net", vec![2, 16, 16], vec![LayerSpec::conv(2, 8, 5)]).unwrap();
    let plan = memory::plan_network_tiles(&net, 4, 128, 32).unwrap();
    let Some(LayerTiling::RowBands {
        bands,
        rows_per_tile,
    }) = &plan.layers[0]
    else {
        panic!("conv should be tiled");
    };
    assert_eq!(*rows_per_tile, 1);
    for band in bands {
        assert_eq!(band.out_rows(), 1);
        assert!(band.in_rows() >= 5, "halo rows missing: {band:?}");
        let bytes = memory::tile_bytes(2 * band.in_rows() * 16, 4)
            + memory::tile_bytes(8 * band.out_rows() * 12, 4);
        assert!(bytes <= 128);
    }
    assert_eq!(bands.len(), 12);
}

#[test]
fn budget_too_small_for_one_row_is_a_compile_time_typed_error() {
    let (model, _) = tiny_setup(4);
    let accel = Accelerator::new(tiled_config(16));
    match accel.compile(&model) {
        Err(AccelError::BufferBudget {
            required_bytes,
            budget_bytes,
            ..
        }) => {
            assert!(required_bytes > budget_bytes);
            assert_eq!(budget_bytes, 16);
        }
        other => panic!("expected BufferBudget, got {other:?}"),
    }
    // And the run paths surface the same error.
    let input = Tensor::filled(vec![1, 12, 12], 0.5f32);
    assert!(matches!(
        accel.run(&model, &input),
        Err(AccelError::BufferBudget { .. })
    ));
}

#[test]
fn tiled_batches_match_solo_runs_and_the_oracle() {
    let (model, inputs) = tiny_setup(3);
    let tiled = Accelerator::new(tiled_config(128));
    let untiled = Accelerator::new(AcceleratorConfig::default());
    let batch = tiled.run_batch(&model, &inputs).unwrap();
    assert_eq!(batch.len(), inputs.len());
    for (report, input) in batch.iter().zip(&inputs) {
        assert_eq!(report, &tiled.run(&model, input).unwrap());
        assert_eq!(report, &untiled.run_sequential(&model, input).unwrap());
    }
}

/// Full-scale VGG-11 through the cycle-accurate `run` path under a buffer
/// budget more than four times smaller than its largest layer — the PR's
/// acceptance criterion and the paper's headline deployment.  Heavy
/// (28.5 M parameters), so it is ignored by default and exercised by the
/// CI smoke in release mode.
#[test]
#[ignore = "multi-second full-scale model; run explicitly (CI smoke does, in release)"]
fn vgg11_full_scale_runs_cycle_accurately_under_a_tiled_budget() {
    let net = zoo::vgg11_cifar10();
    let input = Tensor::from_vec(
        vec![3, 32, 32],
        (0..3 * 32 * 32)
            .map(|j| ((j * 7) % 100) as f32 / 100.0)
            .collect(),
    )
    .unwrap();
    let model = converted(&net, 4, std::slice::from_ref(&input));

    let config = AcceleratorConfig::vgg11_tiled();
    let budget = config.activation_buffer_bytes.unwrap();
    let largest = memory::largest_layer_footprint_bytes(&net, model.time_steps());
    assert!(
        largest >= 4 * budget,
        "budget {budget} B is not 4x below the largest layer ({largest} B)"
    );

    let accel = Accelerator::new(config);
    let report = accel.run(&model, &input).unwrap();
    // The functional model is the gold reference for the values …
    let trace = model.forward(&input).unwrap();
    assert_eq!(report.logits, trace.logits().as_slice());
    assert_eq!(report.prediction, trace.predicted_class());
    // … and the untiled sequential engine for the full report (the host
    // has memory to spare; the modelled chip does not).
    let untiled = Accelerator::new(AcceleratorConfig {
        activation_buffer_bytes: None,
        ..config
    });
    let oracle = untiled.run_sequential(&model, &input).unwrap();
    assert_eq!(report, oracle);
    assert!(report.total_work().adder_ops > 0);
}
