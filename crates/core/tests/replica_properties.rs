//! Property tests for the replicated serving layer.
//!
//! Two tiers:
//!
//! * **Correlation** — for every interleaving proptest generates
//!   (submission permutation, replica count, micro-batch cap, mixed
//!   ticket/tagged completion paths), every report an N-replica server
//!   hands back is **bit-identical** to the same input served by a
//!   replicas=1 server and by the solo sequential oracle.  Replication
//!   must be invisible in the results.
//! * **Placement** — the router's pure policy
//!   ([`snn_accel::serve::router::preference_order`]) is driven with
//!   synthetic views and simulated arrival schedules: placements always
//!   land on a least-depth healthy candidate (drain rate and index only
//!   break ties), so no replica's queue ever exceeds the least depth plus
//!   the micro-batch slack at the moment it is chosen; stale snapshots
//!   fall back to the sticky previous choice.

use proptest::prelude::*;
use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::router::{choose, preference_order, ReplicaView};
use snn_accel::serve::{CompletionSink, ServerOptions, StreamServer, Ticket};
use snn_accel::sim::Accelerator;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::zoo;
use snn_tensor::Tensor;
use std::sync::Arc;

fn tiny_setup(seed: u64, time_steps: usize, count: usize) -> (SnnModel, Vec<Tensor<f32>>) {
    let net = zoo::tiny_cnn();
    let params = Parameters::he_init(&net, seed).unwrap();
    let inputs: Vec<Tensor<f32>> = (0..count)
        .map(|i| {
            let values: Vec<f32> = (0..144)
                .map(|j| {
                    let x = (j as u64 * 2654435761).wrapping_add(seed + i as u64 * 7919);
                    (x % 97) as f32 / 96.0
                })
                .collect();
            Tensor::from_vec(vec![1, 12, 12], values).unwrap()
        })
        .collect();
    let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps,
        },
    )
    .unwrap();
    (model, inputs)
}

/// Turns proptest's raw keys into a permutation of `0..len` (sort indices
/// by key, index as tiebreak) — the submission interleaving.
fn permutation(keys: &[u64], len: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    order.sort_by_key(|&i| (keys.get(i).copied().unwrap_or(0), i));
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The correlation suite: an N-replica server's SCORES (full
    /// `RunReport`s, logits included) are bit-identical to a replicas=1
    /// server and the solo oracle for every generated interleaving of
    /// submissions across both completion paths.
    #[test]
    fn replicated_reports_match_single_replica_for_every_interleaving(
        replicas in 2usize..4,
        max_batch in 1usize..4,
        order_keys in proptest::collection::vec(0u64..1000, 8),
        tagged_mask in 0u32..256,
        time_steps in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (model, inputs) = tiny_setup(seed, time_steps, order_keys.len());
        let config = AcceleratorConfig::default();

        // Oracle 1: replicas = 1, same micro-batching options.
        let single = StreamServer::start_with(config, model.clone(), ServerOptions {
            max_batch,
            ..ServerOptions::default()
        }).unwrap();
        let baseline = single.run_all(&inputs).unwrap();
        single.shutdown();

        // Oracle 2: solo sequential accelerator.
        let solo = Accelerator::new(config);

        // System under test: N replicas, submissions in a generated
        // permutation, each through a generated completion path.
        let server = StreamServer::start_with(config, model.clone(), ServerOptions {
            max_batch,
            replicas,
            ..ServerOptions::default()
        }).unwrap();
        let (sink, completions) = CompletionSink::new(Arc::new(|| {}));
        let mut tickets: Vec<(usize, Ticket)> = Vec::new();
        let mut tagged = 0usize;
        for &index in &permutation(&order_keys, inputs.len()) {
            if tagged_mask & (1 << (index % 32)) != 0 {
                server.submit_tagged(inputs[index].clone(), index as u64, &sink).unwrap();
                tagged += 1;
            } else {
                tickets.push((index, server.submit(inputs[index].clone()).unwrap()));
            }
        }
        let mut reports = vec![None; inputs.len()];
        for (index, ticket) in tickets {
            reports[index] = Some(ticket.wait().unwrap());
        }
        for _ in 0..tagged {
            let completion = completions
                .recv_timeout(std::time::Duration::from_secs(60))
                .expect("tagged completion arrives");
            reports[completion.tag as usize] = Some(completion.result.unwrap());
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.replicas, replicas);
        prop_assert_eq!(stats.healthy_replicas, replicas);
        prop_assert_eq!(stats.completed, inputs.len() as u64);
        prop_assert_eq!(stats.errors, 0);

        for (index, report) in reports.into_iter().enumerate() {
            let report = report.expect("every submission settled");
            prop_assert_eq!(&report, &baseline[index],
                "replicas={} differs from replicas=1 at input {}", replicas, index);
            prop_assert_eq!(&report, &solo.run(&model, &inputs[index]).unwrap());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Placement always lands on a candidate with the least observed
    /// depth; drain rate and index only break ties among equal depths.
    #[test]
    fn choose_picks_a_least_depth_candidate(
        depths in proptest::collection::vec(0usize..20, 1..6),
        capacity in 1usize..24,
        rates in proptest::collection::vec(0u32..1000, 6),
        healthy_mask in 0u32..64,
        fresh_mask in 0u32..64,
        sticky in proptest::option::of(0usize..6),
    ) {
        let views: Vec<ReplicaView> = depths.iter().enumerate().map(|(i, &depth)| ReplicaView {
            index: i,
            healthy: healthy_mask & (1 << i) != 0,
            depth,
            capacity,
            drain_rate_ips: f64::from(rates[i]) / 10.0,
            fresh: fresh_mask & (1 << i) != 0,
        }).collect();
        let candidates: Vec<&ReplicaView> =
            views.iter().filter(|v| v.healthy && v.depth < v.capacity).collect();
        match choose(&views, sticky) {
            None => prop_assert!(candidates.is_empty(),
                "no choice only when no candidate exists"),
            Some(chosen) => {
                let view = &views[chosen];
                prop_assert!(view.healthy && view.depth < view.capacity,
                    "the choice must be a live, non-full candidate");
                let least = candidates.iter().map(|v| v.depth).min().unwrap();
                let any_fresh = candidates.iter().any(|v| v.fresh);
                if any_fresh {
                    prop_assert_eq!(view.depth, least,
                        "with a fresh candidate, placement is least-depth");
                } else if let Some(sticky) = sticky {
                    // All views stale: sticky wins if it is a candidate.
                    if candidates.iter().any(|v| v.index == sticky) {
                        prop_assert_eq!(chosen, sticky);
                    }
                }
            }
        }
        // The full preference order is a permutation of the candidates.
        let order = preference_order(&views, sticky);
        prop_assert_eq!(order.len(), candidates.len());
    }

    /// Arrival-schedule simulation: submissions arrive one at a time and
    /// replicas drain micro-batches at random points.  Every placement
    /// lands on a least-depth candidate, so immediately after it the
    /// chosen replica's queue is within the micro-batch slack of the
    /// least depth — queues stay balanced and no replica runs away.
    #[test]
    fn random_arrival_schedules_keep_queues_within_micro_batch_slack(
        replicas in 2usize..5,
        max_batch in 1usize..9,
        // Events: Some(replica hint) drains that replica, None is an arrival.
        events in proptest::collection::vec(
            proptest::option::of(0usize..5), 1..200),
    ) {
        let capacity = 64usize;
        let mut depths = vec![0usize; replicas];
        for event in events {
            match event {
                Some(hint) => {
                    let r = hint % replicas;
                    depths[r] = depths[r].saturating_sub(max_batch);
                }
                None => {
                    let views: Vec<ReplicaView> = depths.iter().enumerate()
                        .map(|(i, &depth)| ReplicaView {
                            index: i,
                            healthy: true,
                            depth,
                            capacity,
                            drain_rate_ips: 0.0,
                            fresh: true,
                        })
                        .collect();
                    let least = *depths.iter().min().unwrap();
                    if least >= capacity {
                        prop_assert_eq!(choose(&views, None), None);
                        continue;
                    }
                    let chosen = choose(&views, None).expect("a candidate exists");
                    prop_assert_eq!(depths[chosen], least, "least-depth placement");
                    depths[chosen] += 1;
                    prop_assert!(depths[chosen] <= least + max_batch.max(1),
                        "placed queue within micro-batch slack of the least depth");
                }
            }
        }
    }
}
