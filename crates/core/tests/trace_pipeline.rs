//! End-to-end tests of the per-request tracing pipeline at the serving
//! core: every admitted request yields exactly one complete
//! `RequestTrace` under its request id, phase durations stay within
//! wall-clock bounds, terminal outcomes match the settled results,
//! tracing never leaks an open span, and — the contract that makes
//! tracing safe to leave on — SCORES are bit-identical with tracing on
//! and off.
//!
//! The <3% overhead smoke lives here too, `#[ignore]`d by default (it
//! measures wall-clock throughput, so it only runs where the machine is
//! quiet — the CI `observability` job invokes it explicitly).

use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::{ServerOptions, StreamServer};
use snn_accel::AccelError;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::zoo;
use snn_telemetry::{Outcome, Phase};
use snn_tensor::Tensor;
use std::collections::HashSet;
use std::time::{Duration, Instant};

fn tiny_setup(seed: u64, time_steps: usize, count: usize) -> (SnnModel, Vec<Tensor<f32>>) {
    let net = zoo::tiny_cnn();
    let params = Parameters::he_init(&net, seed).unwrap();
    let inputs: Vec<Tensor<f32>> = (0..count)
        .map(|i| {
            let values: Vec<f32> = (0..144)
                .map(|j| {
                    let x = (j as u64 * 2654435761).wrapping_add(seed + i as u64 * 7919);
                    (x % 97) as f32 / 96.0
                })
                .collect();
            Tensor::from_vec(vec![1, 12, 12], values).unwrap()
        })
        .collect();
    let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps,
        },
    )
    .unwrap();
    (model, inputs)
}

fn traced_options(replicas: usize) -> ServerOptions {
    ServerOptions {
        replicas,
        trace: true,
        ..ServerOptions::default()
    }
}

#[test]
fn every_served_request_yields_one_complete_trace() {
    let (model, inputs) = tiny_setup(11, 3, 6);
    let server =
        StreamServer::start_with(AcceleratorConfig::default(), model, traced_options(2)).unwrap();
    let wall_start = Instant::now();
    let reports = server.run_all(&inputs).unwrap();
    let wall = wall_start.elapsed().as_secs_f64();
    assert_eq!(reports.len(), inputs.len());

    let recorder = server.recorder().clone();
    assert_eq!(recorder.open_spans(), 0, "no span may outlive its request");
    let traces = recorder.drain();
    assert_eq!(traces.len(), inputs.len(), "one trace per request");

    let ids: HashSet<u64> = traces.iter().map(|t| t.request_id).collect();
    assert_eq!(ids.len(), traces.len(), "request ids are unique");

    for trace in &traces {
        match &trace.outcome {
            Outcome::Scores { total_cycles } => assert!(*total_cycles > 0),
            other => panic!("served request traced as {other:?}"),
        }
        let replica = trace.replica.expect("served request was routed");
        assert!(replica < 2);
        assert!(trace.queue_depth_at_route.is_some());
        for phase in [
            Phase::Admission,
            Phase::Route,
            Phase::QueueWait,
            Phase::BatchAssembly,
            Phase::Compute,
        ] {
            assert!(
                trace.phase_seconds(phase).is_some(),
                "missing phase {phase:?} in {trace:?}"
            );
        }
        let phase_sum: f64 = trace.phases.iter().map(|s| s.seconds).sum();
        assert!(
            phase_sum <= trace.total_seconds + 1e-6,
            "phases ({phase_sum}s) exceed the trace total ({}s)",
            trace.total_seconds
        );
        assert!(
            trace.total_seconds <= wall + 0.5,
            "trace total exceeds the run's wall clock"
        );
    }

    // The histograms saw every request.
    assert_eq!(recorder.duration_histogram().count(), inputs.len() as u64);
    assert_eq!(recorder.queue_wait_histogram().count(), inputs.len() as u64);
    assert_eq!(recorder.compute_histogram().count(), inputs.len() as u64);
    server.shutdown();
}

#[test]
fn scores_are_bit_identical_with_tracing_on_and_off_and_off_records_nothing() {
    let (model, inputs) = tiny_setup(23, 3, 5);
    let config = AcceleratorConfig::default();
    let traced = StreamServer::start_with(config, model.clone(), traced_options(2)).unwrap();
    let untraced = StreamServer::start_with(
        config,
        model,
        ServerOptions {
            trace: false,
            ..traced_options(2)
        },
    )
    .unwrap();

    let on = traced.run_all(&inputs).unwrap();
    let off = untraced.run_all(&inputs).unwrap();
    assert_eq!(on, off, "tracing must not perturb results");

    let recorder = untraced.recorder().clone();
    assert!(!recorder.enabled());
    assert_eq!(recorder.open_spans(), 0);
    assert!(
        recorder.drain().is_empty(),
        "disabled recorder stores no traces"
    );
    assert!(recorder.duration_histogram().is_empty());
    assert_eq!(traced.recorder().drain().len(), inputs.len());
    traced.shutdown();
    untraced.shutdown();
}

#[test]
fn deadline_sheds_trace_the_rejected_deadline_outcome() {
    let (model, inputs) = tiny_setup(31, 3, 4);
    let server = StreamServer::start_with(
        AcceleratorConfig::default(),
        model,
        ServerOptions {
            // A zero queue-wait deadline sheds every submission before
            // compute, deterministically.
            max_queue_wait: Some(Duration::ZERO),
            ..traced_options(1)
        },
    )
    .unwrap();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|i| server.submit(i.clone()).unwrap())
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            Err(AccelError::DeadlineExceeded { .. }) => {}
            other => panic!("expected a deadline shed, got {other:?}"),
        }
    }
    let recorder = server.recorder().clone();
    assert_eq!(recorder.open_spans(), 0);
    let traces = recorder.drain();
    assert_eq!(traces.len(), inputs.len());
    for trace in &traces {
        assert_eq!(
            trace.outcome,
            Outcome::Rejected {
                scope: "deadline".to_string()
            },
            "shed request traced as {trace:?}"
        );
        // A shed request reached a queue but never computed.
        assert!(trace.phase_seconds(Phase::QueueWait).is_some());
        assert!(trace.phase_seconds(Phase::Compute).is_none());
    }
    server.shutdown();
}

/// The overhead budget pinned by the issue: tracing on may cost at most
/// 3% throughput versus `SNN_TRACE=0`.  Wall-clock measurement, so the
/// test is `#[ignore]`d in the default tier and invoked explicitly by
/// the CI `observability` job (best-of-3 rounds each way to shed
/// scheduler noise).
#[test]
#[ignore = "wall-clock smoke; run explicitly: cargo test --release -- --ignored overhead_budget"]
fn overhead_budget_tracing_costs_under_three_percent() {
    let (model, inputs) = tiny_setup(47, 3, 8);
    let config = AcceleratorConfig::default();
    let mut repeated = Vec::with_capacity(inputs.len() * 25);
    for _ in 0..25 {
        repeated.extend(inputs.iter().cloned());
    }

    let best = |trace: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let server = StreamServer::start_with(
                config,
                model.clone(),
                ServerOptions {
                    trace,
                    ..traced_options(2)
                },
            )
            .unwrap();
            let started = Instant::now();
            server.run_all(&repeated).unwrap();
            best = best.min(started.elapsed().as_secs_f64());
            server.shutdown();
        }
        best
    };

    // Warm caches and thread pools on a throwaway round.
    best(false);
    let off = best(false);
    let on = best(true);
    let overhead = (on - off) / off;
    assert!(
        overhead < 0.03,
        "tracing overhead {:.2}% exceeds the 3% budget (on {on:.4}s, off {off:.4}s)",
        overhead * 100.0
    );
}
