//! Property-based tests for the processing-unit simulators: bit-exactness
//! against the reference operators, schedule invariance, and the
//! radix-accumulation identity — for arbitrary layer shapes and data.

use proptest::prelude::*;
use snn_accel::config::ArrayGeometry;
use snn_accel::conv::ConvolutionUnit;
use snn_accel::linear::LinearUnit;
use snn_accel::pool::PoolingUnit;
use snn_accel::reference::{ReferenceConvolutionUnit, ReferenceLinearUnit};
use snn_model::layer::PoolKind;
use snn_tensor::{ops, Tensor};

/// Adds the per-output-channel bias to a reference convolution result.
fn conv_reference(
    input: &Tensor<i64>,
    kernel: &Tensor<i64>,
    bias: &Tensor<i64>,
    stride: usize,
    padding: usize,
) -> Tensor<i64> {
    let acc = ops::conv2d(input, kernel, None, stride, padding).unwrap();
    let dims = acc.shape().dims().to_vec();
    let hw = dims[1] * dims[2];
    let mut out = acc;
    for oc in 0..dims[0] {
        for i in 0..hw {
            out.as_mut_slice()[oc * hw + i] += bias.as_slice()[oc];
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The cycle-stepped convolution unit computes exactly the integer
    /// reference convolution for arbitrary shapes, strides and paddings.
    #[test]
    fn conv_unit_is_bit_exact(
        c_in in 1usize..3,
        c_out in 1usize..4,
        size in 4usize..8,
        kernel in 2usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        time_steps in 1usize..7,
        columns in 1usize..6,
        seed in 0u64..1000,
    ) {
        // Derive deterministic pseudo-random levels and kernel codes.
        let max_level = (1i64 << time_steps) - 1;
        let input = Tensor::from_vec(
            vec![c_in, size, size],
            (0..c_in * size * size)
                .map(|i| ((i as u64 * 2654435761 + seed) % (max_level as u64 + 1)) as i64)
                .collect(),
        ).unwrap();
        let kernel_t = Tensor::from_vec(
            vec![c_out, c_in, kernel, kernel],
            (0..c_out * c_in * kernel * kernel)
                .map(|i| (((i as u64 * 40503 + seed) % 7) as i64) - 3)
                .collect(),
        ).unwrap();
        let bias = Tensor::from_vec(
            vec![c_out],
            (0..c_out).map(|i| (i as i64) - 1).collect(),
        ).unwrap();

        let unit = ConvolutionUnit::new(ArrayGeometry { columns, rows: kernel });
        let result = unit
            .run_layer(&input, &kernel_t, &bias, time_steps, stride, padding)
            .unwrap();
        let expected = conv_reference(&input, &kernel_t, &bias, stride, padding);
        prop_assert_eq!(result.accumulators, expected);
    }

    /// The adder-operation count equals the total number of (spike, kernel
    /// weight) pairs inside valid receptive fields — i.e. the popcount of
    /// the input levels times the kernel positions that cover each pixel —
    /// for the no-padding, stride-1, single-channel case where that closed
    /// form is easy to state.
    #[test]
    fn conv_unit_adder_ops_scale_with_spike_count(
        size in 4usize..7,
        time_steps in 1usize..6,
        seed in 0u64..1000,
    ) {
        let max_level = (1i64 << time_steps) - 1;
        let mk_input = |scale: i64| Tensor::from_vec(
            vec![1, size, size],
            (0..size * size)
                .map(|i| (((i as u64 * 97 + seed) % (max_level as u64 + 1)) as i64).min(scale))
                .collect::<Vec<i64>>(),
        ).unwrap();
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 1i64);
        let bias = Tensor::filled(vec![1], 0i64);
        let unit = ConvolutionUnit::new(ArrayGeometry { columns: 8, rows: 3 });
        // All-silent input -> zero adder ops; clamping to the full level
        // range can only add spikes, never remove them.
        let silent = unit.run_layer(&mk_input(0), &kernel, &bias, time_steps, 1, 0).unwrap();
        let full = unit.run_layer(&mk_input(max_level), &kernel, &bias, time_steps, 1, 0).unwrap();
        prop_assert_eq!(silent.stats.adder_ops, 0);
        prop_assert!(full.stats.adder_ops >= silent.stats.adder_ops);
        // Cycle counts are identical: the schedule is data-independent.
        prop_assert_eq!(silent.stats.cycles, full.stats.cycles);
    }

    /// The linear unit matches the reference matrix-vector product for any
    /// lane count, and its cycle count follows the closed form.
    #[test]
    fn linear_unit_is_bit_exact_for_any_lane_count(
        inputs in 1usize..12,
        outputs in 1usize..10,
        lanes in 1usize..12,
        time_steps in 1usize..7,
        seed in 0u64..1000,
    ) {
        let max_level = (1i64 << time_steps) - 1;
        let input = Tensor::from_vec(
            vec![inputs],
            (0..inputs)
                .map(|i| ((i as u64 * 31 + seed) % (max_level as u64 + 1)) as i64)
                .collect(),
        ).unwrap();
        let weight = Tensor::from_vec(
            vec![outputs, inputs],
            (0..outputs * inputs)
                .map(|i| (((i as u64 * 17 + seed) % 7) as i64) - 3)
                .collect(),
        ).unwrap();
        let bias = Tensor::from_vec(
            vec![outputs],
            (0..outputs).map(|i| (i as i64 % 5) - 2).collect(),
        ).unwrap();

        let unit = LinearUnit::new(lanes);
        let result = unit.run_layer(&input, &weight, &bias, time_steps).unwrap();
        let expected = ops::linear(&input, &weight, Some(&bias)).unwrap();
        prop_assert_eq!(result.accumulators, expected);
        prop_assert_eq!(
            result.stats.cycles,
            unit.layer_cycles(inputs, outputs, time_steps)
        );
    }

    /// The pooling unit agrees with the reference pooling operators for both
    /// flavours.
    #[test]
    fn pooling_unit_matches_reference(
        channels in 1usize..4,
        half_size in 2usize..5,
        max_pool in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let size = half_size * 2;
        let input = Tensor::from_vec(
            vec![channels, size, size],
            (0..channels * size * size)
                .map(|i| ((i as u64 * 131 + seed) % 64) as i64)
                .collect(),
        ).unwrap();
        let kind = if max_pool { PoolKind::Max } else { PoolKind::Average };
        let unit = PoolingUnit::new(ArrayGeometry { columns: 14, rows: 2 });
        let result = unit.run_layer(&input, kind, 2, 4).unwrap();
        let expected = match kind {
            PoolKind::Max => ops::max_pool2d(&input, 2).unwrap(),
            PoolKind::Average => ops::avg_pool2d(&input, 2).unwrap(),
        };
        prop_assert_eq!(result.levels, expected);
    }

    /// The bit-plane sparse convolution engine reproduces the retained
    /// counter-stepped scalar reference exactly: same accumulators and the
    /// same `UnitStats`, for arbitrary shapes, strides, paddings, tile
    /// counts and data — the contract that makes the derived (analytical)
    /// statistics trustworthy.
    #[test]
    fn sparse_conv_engine_matches_scalar_reference_exactly(
        c_in in 1usize..3,
        c_out in 1usize..4,
        size in 4usize..9,
        kernel in 2usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        time_steps in 0usize..7,
        columns in 1usize..6,
        seed in 0u64..1000,
    ) {
        let max_level = (1i64 << time_steps.max(1)) - 1;
        let input = Tensor::from_vec(
            vec![c_in, size, size],
            (0..c_in * size * size)
                .map(|i| ((i as u64 * 2654435761 + seed) % (max_level as u64 + 2)) as i64)
                .collect(),
        ).unwrap();
        let kernel_t = Tensor::from_vec(
            vec![c_out, c_in, kernel, kernel],
            (0..c_out * c_in * kernel * kernel)
                .map(|i| (((i as u64 * 40503 + seed) % 7) as i64) - 3)
                .collect(),
        ).unwrap();
        let bias = Tensor::from_vec(
            vec![c_out],
            (0..c_out).map(|i| (i as i64) - 1).collect(),
        ).unwrap();

        let geometry = ArrayGeometry { columns, rows: kernel };
        let fast = ConvolutionUnit::new(geometry)
            .run_layer(&input, &kernel_t, &bias, time_steps, stride, padding)
            .unwrap();
        let slow = ReferenceConvolutionUnit::new(geometry)
            .run_layer(&input, &kernel_t, &bias, time_steps, stride, padding)
            .unwrap();
        prop_assert_eq!(&fast.accumulators, &slow.accumulators);
        prop_assert_eq!(fast.stats, slow.stats);
    }

    /// Same contract for the linear engine, over arbitrary lane counts.
    #[test]
    fn sparse_linear_engine_matches_scalar_reference_exactly(
        inputs in 1usize..16,
        outputs in 1usize..10,
        lanes in 1usize..12,
        time_steps in 0usize..7,
        seed in 0u64..1000,
    ) {
        let max_level = (1i64 << time_steps.max(1)) - 1;
        let input = Tensor::from_vec(
            vec![inputs],
            (0..inputs)
                .map(|i| ((i as u64 * 31 + seed) % (max_level as u64 + 2)) as i64)
                .collect(),
        ).unwrap();
        let weight = Tensor::from_vec(
            vec![outputs, inputs],
            (0..outputs * inputs)
                .map(|i| (((i as u64 * 17 + seed) % 7) as i64) - 3)
                .collect(),
        ).unwrap();
        let bias = Tensor::from_vec(
            vec![outputs],
            (0..outputs).map(|i| (i as i64 % 5) - 2).collect(),
        ).unwrap();

        let fast = LinearUnit::new(lanes)
            .run_layer(&input, &weight, &bias, time_steps)
            .unwrap();
        let slow = ReferenceLinearUnit::new(lanes)
            .run_layer(&input, &weight, &bias, time_steps)
            .unwrap();
        prop_assert_eq!(&fast.accumulators, &slow.accumulators);
        prop_assert_eq!(fast.stats, slow.stats);
    }

    /// Splitting the radix accumulation over time steps is exact: running
    /// with T time steps on levels bounded by 2^T - 1 gives the same result
    /// as a plain integer convolution — i.e. no precision is lost by the
    /// shift-and-accumulate output logic.
    #[test]
    fn radix_accumulation_loses_no_precision(
        time_steps in 1usize..10,
        seed in 0u64..1000,
    ) {
        let max_level = (1i64 << time_steps) - 1;
        let input = Tensor::from_vec(
            vec![1, 5, 5],
            (0..25).map(|i| ((i as u64 * 73 + seed) % (max_level as u64 + 1)) as i64).collect(),
        ).unwrap();
        let kernel = Tensor::from_vec(
            vec![1, 1, 3, 3],
            (0..9).map(|i| ((i as i64 + seed as i64) % 7) - 3).collect(),
        ).unwrap();
        let bias = Tensor::filled(vec![1], 0i64);
        let unit = ConvolutionUnit::new(ArrayGeometry { columns: 3, rows: 3 });
        let hw_result = unit.run_layer(&input, &kernel, &bias, time_steps, 1, 0).unwrap();
        let reference = ops::conv2d(&input, &kernel, None, 1, 0).unwrap();
        prop_assert_eq!(hw_result.accumulators, reference);
    }
}
