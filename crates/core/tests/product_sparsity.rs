//! Properties of the product-sparsity prepass (`AcceleratorConfig::
//! product_sparsity`): reusing a contained row's partial sums must be an
//! **accounting-only** optimisation.  Accumulators stay bit-identical to
//! the reuse-free engine and the counter-stepped scalar reference, the
//! static-schedule counters do not move, `adder_ops` can only shrink, and
//! the reuse statistics (`reused_partials`, `difference_bits`) are zero
//! exactly when no containment was exploited.  End to end, a PS-enabled
//! accelerator must produce pipelined == sequential `RunReport`s and the
//! same logits as the PS-off run — on LeNet here, and on the tiled
//! full-scale VGG-11 in the ignored release smoke.

use proptest::prelude::*;
use snn_accel::config::{AcceleratorConfig, ArrayGeometry};
use snn_accel::conv::ConvolutionUnit;
use snn_accel::memory;
use snn_accel::reference::ReferenceConvolutionUnit;
use snn_accel::sim::Accelerator;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::{zoo, NetworkSpec};
use snn_tensor::Tensor;

fn converted(net: &NetworkSpec, time_steps: usize, inputs: &[Tensor<f32>]) -> SnnModel {
    let params = Parameters::he_init(net, 7).unwrap();
    let stats = CalibrationStats::collect(net, &params, inputs.iter()).unwrap();
    convert(
        net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps,
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary shapes, strides, paddings, gather thresholds and
    /// data — including inputs with repeated rows, where containment is
    /// common — the PS-enabled unit is bit-identical to the PS-off unit
    /// and the scalar reference, keeps every schedule counter, and only
    /// ever lowers `adder_ops`, by exactly zero when nothing was reused.
    #[test]
    fn product_sparsity_is_an_accounting_only_optimisation(
        c_in in 1usize..3,
        c_out in 1usize..4,
        size in 4usize..9,
        kernel in 2usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        time_steps in 0usize..7,
        columns in 1usize..6,
        threshold_sel in 0usize..3,
        repeat_rows in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let max_level = (1i64 << time_steps.max(1)) - 1;
        let input = Tensor::from_vec(
            vec![c_in, size, size],
            (0..c_in * size * size)
                .map(|i| {
                    // Optionally fold the row index so rows repeat within a
                    // channel — the regime where containment actually fires.
                    let i = if repeat_rows { i % (2 * size) } else { i };
                    ((i as u64 * 2654435761 + seed) % (max_level as u64 + 2)) as i64
                })
                .collect(),
        ).unwrap();
        let kernel_t = Tensor::from_vec(
            vec![c_out, c_in, kernel, kernel],
            (0..c_out * c_in * kernel * kernel)
                .map(|i| (((i as u64 * 40503 + seed) % 7) as i64) - 3)
                .collect(),
        ).unwrap();
        let bias = Tensor::from_vec(
            vec![c_out],
            (0..c_out).map(|i| (i as i64) - 1).collect(),
        ).unwrap();

        let geometry = ArrayGeometry { columns, rows: kernel };
        // 0.0 forces the dense gather everywhere, 2.0 never takes it —
        // product sparsity must compose with both row representations.
        let threshold = [0.0, 0.5, 2.0][threshold_sel];
        let ps = ConvolutionUnit::with_options(geometry, threshold, true)
            .run_layer(&input, &kernel_t, &bias, time_steps, stride, padding)
            .unwrap();
        let plain = ConvolutionUnit::with_options(geometry, threshold, false)
            .run_layer(&input, &kernel_t, &bias, time_steps, stride, padding)
            .unwrap();
        let oracle = ReferenceConvolutionUnit::new(geometry)
            .run_layer(&input, &kernel_t, &bias, time_steps, stride, padding)
            .unwrap();

        prop_assert_eq!(&ps.accumulators, &plain.accumulators);
        prop_assert_eq!(&ps.accumulators, &oracle.accumulators);
        // The static schedule is untouched by reuse.
        prop_assert_eq!(ps.stats.cycles, plain.stats.cycles);
        prop_assert_eq!(ps.stats.activation_reads, plain.stats.activation_reads);
        prop_assert_eq!(ps.stats.kernel_reads, plain.stats.kernel_reads);
        prop_assert_eq!(ps.stats.output_writes, plain.stats.output_writes);
        // Reuse only removes adder work, and reports it honestly.
        prop_assert!(ps.stats.adder_ops <= plain.stats.adder_ops);
        prop_assert_eq!(plain.stats.reused_partials, 0);
        prop_assert_eq!(plain.stats.difference_bits, 0);
        if ps.stats.reused_partials == 0 {
            prop_assert_eq!(ps.stats.adder_ops, plain.stats.adder_ops);
            prop_assert_eq!(ps.stats.difference_bits, 0);
        }
    }
}

/// A crafted input where containment is guaranteed: within the channel,
/// even-position rows are exact copies (empty difference) and the final
/// row is a strict superset of them (non-empty difference).  The prepass
/// must find the reuse, report it, and strictly reduce `adder_ops` —
/// while the accumulators stay bit-identical to the reuse-free engine.
#[test]
fn crafted_containment_is_found_and_reduces_adder_work() {
    let (h, w, time_steps) = (6usize, 16usize, 3usize);
    let mut levels = vec![0i64; h * w];
    for y in 0..h - 1 {
        for x in (0..w).step_by(2) {
            levels[y * w + x] = ((x / 2) % 7 + 1) as i64; // identical rows
        }
    }
    for x in 0..w {
        // Superset row: same levels on the shared support, plus odd columns.
        levels[(h - 1) * w + x] = if x % 2 == 0 {
            ((x / 2) % 7 + 1) as i64
        } else {
            5
        };
    }
    let input = Tensor::from_vec(vec![1, h, w], levels).unwrap();
    let kernel =
        Tensor::from_vec(vec![2, 1, 3, 3], (0..18).map(|i| (i % 5) - 2).collect()).unwrap();
    let bias = Tensor::from_vec(vec![2], vec![1, -1]).unwrap();

    let geometry = ArrayGeometry {
        columns: 8,
        rows: 3,
    };
    let ps = ConvolutionUnit::with_options(geometry, 0.5, true)
        .run_layer(&input, &kernel, &bias, time_steps, 1, 1)
        .unwrap();
    let plain = ConvolutionUnit::with_options(geometry, 0.5, false)
        .run_layer(&input, &kernel, &bias, time_steps, 1, 1)
        .unwrap();

    assert_eq!(ps.accumulators, plain.accumulators);
    assert!(
        ps.stats.reused_partials > 0,
        "identical rows must be detected as contained"
    );
    assert!(
        ps.stats.difference_bits > 0,
        "the superset row must reuse via a non-empty difference"
    );
    assert!(
        ps.stats.adder_ops < plain.stats.adder_ops,
        "reuse must strictly reduce adder work: {} vs {}",
        ps.stats.adder_ops,
        plain.stats.adder_ops
    );
    assert_eq!(ps.stats.cycles, plain.stats.cycles);
}

/// End to end on LeNet-5: with product sparsity enabled, the pipelined
/// engine and the strictly sequential oracle must agree on the complete
/// `RunReport` (including the new reuse counters), and the logits must
/// match the PS-off run bit for bit.
#[test]
fn lenet_product_sparsity_reports_match_the_sequential_oracle() {
    let net = zoo::lenet5();
    let inputs: Vec<Tensor<f32>> = (0..3)
        .map(|i| {
            let values: Vec<f32> = (0..32 * 32)
                .map(|j| ((i * 29 + j * 13) % 100) as f32 / 100.0)
                .collect();
            Tensor::from_vec(vec![1, 32, 32], values).unwrap()
        })
        .collect();
    let model = converted(&net, 4, &inputs);

    let ps_config = AcceleratorConfig {
        product_sparsity: true,
        ..AcceleratorConfig::default()
    };
    let ps_accel = Accelerator::new(ps_config);
    let plain_accel = Accelerator::new(AcceleratorConfig::default());
    let mut total_reused = 0u64;
    for input in &inputs {
        let pipelined = ps_accel.run(&model, input).unwrap();
        let sequential = ps_accel.run_sequential(&model, input).unwrap();
        assert_eq!(pipelined, sequential);
        let plain = plain_accel.run_sequential(&model, input).unwrap();
        assert_eq!(pipelined.logits, plain.logits);
        assert_eq!(pipelined.prediction, plain.prediction);
        assert_eq!(pipelined.total_cycles(), plain.total_cycles());
        let ps_work = pipelined.total_work();
        let plain_work = plain.total_work();
        assert!(ps_work.adder_ops <= plain_work.adder_ops);
        assert_eq!(plain_work.reused_partials, 0);
        total_reused += ps_work.reused_partials;
    }
    assert!(
        total_reused > 0,
        "LeNet feature maps are expected to contain reusable rows"
    );
}

/// Full-scale VGG-11 under the paper's tiled deployment with product
/// sparsity enabled: logits must match the functional model's trace and
/// the complete report must match the same-config sequential oracle.
/// Heavy (28.5 M parameters), so ignored by default and exercised by the
/// CI smoke in release mode.
#[test]
#[ignore = "multi-second full-scale model; run explicitly (CI smoke does, in release)"]
fn vgg11_tiled_product_sparsity_is_bit_identical() {
    let net = zoo::vgg11_cifar10();
    let input = Tensor::from_vec(
        vec![3, 32, 32],
        (0..3 * 32 * 32)
            .map(|j| ((j * 7) % 100) as f32 / 100.0)
            .collect(),
    )
    .unwrap();
    let model = converted(&net, 4, std::slice::from_ref(&input));

    let config = AcceleratorConfig {
        product_sparsity: true,
        ..AcceleratorConfig::vgg11_tiled()
    };
    let budget = config.activation_buffer_bytes.unwrap();
    let largest = memory::largest_layer_footprint_bytes(&net, model.time_steps());
    assert!(largest >= 4 * budget, "tiling must actually engage");

    let accel = Accelerator::new(config);
    let report = accel.run(&model, &input).unwrap();
    let trace = model.forward(&input).unwrap();
    assert_eq!(report.logits, trace.logits().as_slice());
    assert_eq!(report.prediction, trace.predicted_class());
    let oracle = accel.run_sequential(&model, &input).unwrap();
    assert_eq!(report, oracle);
    // The PS-off run on the same tiling agrees on the values and the
    // static schedule, and reuse genuinely fired at this scale.
    let plain = Accelerator::new(AcceleratorConfig::vgg11_tiled())
        .run_sequential(&model, &input)
        .unwrap();
    assert_eq!(report.logits, plain.logits);
    assert_eq!(report.total_cycles(), plain.total_cycles());
    assert!(report.total_work().reused_partials > 0);
    assert!(report.total_work().adder_ops < plain.total_work().adder_ops);
}
