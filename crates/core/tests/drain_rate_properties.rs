//! Property tests pinning the queue-snapshot drain-rate math
//! ([`snn_accel::serve::drain_rate`]) against a hand-stepped model.
//!
//! The model replays the same micro-batch completion records the
//! dispatcher accumulates — `(completion instant, inferences settled)`
//! pairs capped at [`DRAIN_WINDOW_BATCHES`] — and recomputes the windowed
//! completion-to-completion rate independently, using the identical
//! `Duration::as_secs_f64` arithmetic so agreement is **bitwise**, not
//! approximate.  The fallback ladder is pinned explicitly: fewer than two
//! windowed batches → lifetime average; zero-span window → lifetime
//! average; zero post-oldest items → lifetime average; nothing ever
//! settled → `0.0`.  The rate must always be finite and non-negative, and
//! the counters feeding it behave monotonically (more settled inferences
//! in the same span never lower it).

use proptest::prelude::*;
use snn_accel::serve::{drain_rate, QueueSnapshot, DRAIN_WINDOW_BATCHES, MAX_RETRY_AFTER_MS};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Replays completion events exactly as the dispatcher does: push
/// `(instant, items)` and cap the window at [`DRAIN_WINDOW_BATCHES`].
fn window_of(base: Instant, events: &[(u64, u64)]) -> VecDeque<(Instant, u64)> {
    let mut recent = VecDeque::new();
    let mut offset = 0u64;
    for &(gap_us, items) in events {
        offset += gap_us;
        recent.push_back((base + Duration::from_micros(offset), items));
        if recent.len() > DRAIN_WINDOW_BATCHES {
            recent.pop_front();
        }
    }
    recent
}

/// The hand-stepped model: same window semantics, independently coded.
fn model_rate(recent: &VecDeque<(Instant, u64)>, settled: u64, elapsed: Duration) -> f64 {
    if !recent.is_empty() {
        let (oldest, oldest_items) = *recent.front().unwrap();
        let (newest, _) = *recent.back().unwrap();
        let span = (newest - oldest).as_secs_f64();
        let mut items = 0u64;
        for &(_, n) in recent.iter() {
            items += n;
        }
        items -= oldest_items;
        if span > 0.0 && items > 0 {
            return items as f64 / span;
        }
    }
    if elapsed.as_secs_f64() > 0.0 && settled > 0 {
        return settled as f64 / elapsed.as_secs_f64();
    }
    0.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any sequence of completion events (including gaps of zero
    /// microseconds and batches settling zero items), the production rate
    /// equals the hand-stepped model bit-for-bit and is finite and
    /// non-negative.
    #[test]
    fn drain_rate_matches_hand_stepped_model(
        // Up to 80 events exercises the 32-entry cap more than twice over.
        events in proptest::collection::vec((0u64..2_000_000, 0u64..50), 0..80),
        lifetime_settled in 0u64..10_000,
        lifetime_us in 0u64..100_000_000,
    ) {
        let base = Instant::now();
        let recent = window_of(base, &events);
        prop_assert!(recent.len() <= DRAIN_WINDOW_BATCHES, "window is capped");
        let elapsed = Duration::from_micros(lifetime_us);
        let rate = drain_rate(&recent, lifetime_settled, elapsed);
        let expected = model_rate(&recent, lifetime_settled, elapsed);
        prop_assert_eq!(rate.to_bits(), expected.to_bits(),
            "production {} != model {}", rate, expected);
        prop_assert!(rate.is_finite() && rate >= 0.0);
    }

    /// The windowed rate is monotone in the settled count: settling more
    /// inferences over the same completion span never lowers the rate.
    #[test]
    fn more_items_in_the_same_span_never_lower_the_rate(
        gaps in proptest::collection::vec(1u64..1_000_000, 2..10),
        items in proptest::collection::vec(1u64..50, 10),
        boost in 1u64..10,
    ) {
        let base = Instant::now();
        let events: Vec<(u64, u64)> = gaps.iter().enumerate()
            .map(|(i, &gap)| (gap, items[i]))
            .collect();
        let boosted: Vec<(u64, u64)> = events.iter().enumerate()
            // Boosting any record except the oldest (whose items are
            // excluded from the completion-to-completion count) adds
            // settled work to the same span.
            .map(|(i, &(gap, n))| (gap, if i == 1 { n + boost } else { n }))
            .collect();
        let lifetime = Duration::from_secs(1);
        let baseline = drain_rate(&window_of(base, &events), 100, lifetime);
        let raised = drain_rate(&window_of(base, &boosted), 100 + boost, lifetime);
        prop_assert!(raised >= baseline,
            "boosted rate {} < baseline {}", raised, baseline);
    }

    /// Retry-after hints derived from the rate are always sane: zero only
    /// for an empty queue, clamped to one minute, and never panicking for
    /// any rate the estimator can produce.
    #[test]
    fn retry_after_is_clamped_and_zero_only_when_empty(
        depth in 0usize..100_000,
        capacity in 1usize..100_000,
        events in proptest::collection::vec((0u64..1_000, 0u64..50), 0..40),
        lifetime_us in 0u64..10_000_000,
        lifetime_settled in 0u64..10_000,
    ) {
        let base = Instant::now();
        let rate = drain_rate(
            &window_of(base, &events),
            lifetime_settled,
            Duration::from_micros(lifetime_us),
        );
        let snapshot = QueueSnapshot { depth, capacity, drain_rate_ips: rate };
        let hint = snapshot.retry_after_ms();
        if depth == 0 {
            prop_assert_eq!(hint, 0);
        } else {
            prop_assert!(hint >= 1);
            prop_assert!(hint <= MAX_RETRY_AFTER_MS);
        }
    }
}

#[test]
fn fallback_ladder_is_pinned() {
    let base = Instant::now();
    let lifetime = Duration::from_secs(2);

    // Empty window, nothing ever settled: terminal 0.0.
    assert_eq!(drain_rate(&VecDeque::new(), 0, lifetime), 0.0);
    // Empty window but lifetime work: lifetime average.
    assert_eq!(drain_rate(&VecDeque::new(), 10, lifetime), 5.0);
    // Lifetime work but zero elapsed (first-instant snapshot): 0.0, not a
    // division by zero.
    assert_eq!(drain_rate(&VecDeque::new(), 10, Duration::ZERO), 0.0);

    // A single windowed batch spans zero time: lifetime fallback.
    let single = window_of(base, &[(1_000, 7)]);
    assert_eq!(drain_rate(&single, 10, lifetime), 5.0);

    // Two batches at the same instant (zero span): lifetime fallback.
    let zero_span = window_of(base, &[(1_000, 3), (0, 4)]);
    assert_eq!(drain_rate(&zero_span, 10, lifetime), 5.0);

    // Zero items after the oldest batch (the window start settles work,
    // the rest shed/settled nothing): lifetime fallback, not 0/span.
    let zero_items = window_of(base, &[(1_000, 3), (500, 0), (500, 0)]);
    assert_eq!(drain_rate(&zero_items, 10, lifetime), 5.0);

    // The real windowed path: 4 + 5 items over exactly 1 s.
    let windowed = window_of(base, &[(0, 3), (500_000, 4), (500_000, 5)]);
    assert_eq!(drain_rate(&windowed, 999, lifetime), 9.0);

    // An idle lull after the last completion must NOT decay the rate: the
    // window is completion-to-completion, independent of "now".
    std::thread::sleep(Duration::from_millis(5));
    assert_eq!(drain_rate(&windowed, 999, lifetime), 9.0);
}

#[test]
fn window_cap_drops_oldest_batches() {
    let base = Instant::now();
    // 40 batches, 1 ms apart, 2 items each: the window keeps the newest
    // 32, so the span is 31 ms and the counted items 31 * 2.
    let events: Vec<(u64, u64)> = (0..40).map(|_| (1_000, 2)).collect();
    let recent = window_of(base, &events);
    assert_eq!(recent.len(), DRAIN_WINDOW_BATCHES);
    let rate = drain_rate(&recent, 80, Duration::from_secs(1));
    let expected = (31.0 * 2.0) / Duration::from_micros(31_000).as_secs_f64();
    assert_eq!(rate.to_bits(), expected.to_bits());
}
