//! Chaos-tier tracing tests (fault-injection builds only): deliberate
//! replica crashes and engine panics must still produce exactly one
//! trace per request with the correct terminal outcome, and the recorder
//! must never be left holding an open span — supervision settles every
//! stranded submission, and settling publishes its trace.
#![cfg(feature = "fault-injection")]

use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::{poison, ServerOptions, StreamServer};
use snn_accel::AccelError;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::zoo;
use snn_telemetry::Outcome;
use snn_tensor::Tensor;

fn tiny_setup(seed: u64, count: usize) -> (SnnModel, Vec<Tensor<f32>>) {
    let net = zoo::tiny_cnn();
    let params = Parameters::he_init(&net, seed).unwrap();
    let inputs: Vec<Tensor<f32>> = (0..count)
        .map(|i| {
            let values: Vec<f32> = (0..144)
                .map(|j| {
                    let x = (j as u64 * 2654435761).wrapping_add(seed + i as u64 * 7919);
                    (x % 97) as f32 / 96.0
                })
                .collect();
            Tensor::from_vec(vec![1, 12, 12], values).unwrap()
        })
        .collect();
    let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 3,
        },
    )
    .unwrap();
    (model, inputs)
}

fn poisoned(mut input: Tensor<f32>, value: f32) -> Tensor<f32> {
    input.as_mut_slice()[0] = value;
    input
}

#[test]
fn kill_pill_traces_replica_down_and_leaks_no_spans() {
    let (model, inputs) = tiny_setup(71, 3);
    let server = StreamServer::start_with(
        AcceleratorConfig::default(),
        model,
        ServerOptions {
            replicas: 1,
            trace: true,
            ..ServerOptions::default()
        },
    )
    .unwrap();

    let ticket = server
        .submit(poisoned(inputs[0].clone(), poison::kill_pill()))
        .unwrap();
    match ticket.wait() {
        Err(AccelError::ReplicaDown { replica, .. }) => assert_eq!(replica, 0),
        other => panic!("expected ReplicaDown, got {other:?}"),
    }

    let recorder = server.recorder().clone();
    assert_eq!(recorder.open_spans(), 0, "supervision settles every span");
    let traces = recorder.drain();
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].outcome, Outcome::ReplicaDown);

    // The lone replica is dead: the next submission fails at admission and
    // its trace lands in the unrouted shard with the serving error code.
    match server.submit(inputs[1].clone()) {
        Err(AccelError::Serving { .. }) => {}
        other => panic!("expected Serving after the last replica died, got {other:?}"),
    }
    assert_eq!(recorder.open_spans(), 0);
    let traces = recorder.drain();
    assert_eq!(traces.len(), 1);
    assert_eq!(
        traces[0].outcome,
        Outcome::Error {
            code: "serving".to_string()
        }
    );
    assert_eq!(traces[0].replica, None, "never placed: unrouted");
    server.shutdown();
}

#[test]
fn poison_pill_traces_engine_panic_while_siblings_trace_scores() {
    let (model, inputs) = tiny_setup(83, 4);
    let server = StreamServer::start_with(
        AcceleratorConfig::default(),
        model,
        ServerOptions {
            replicas: 2,
            trace: true,
            ..ServerOptions::default()
        },
    )
    .unwrap();

    let bad = server
        .submit(poisoned(inputs[0].clone(), poison::pill()))
        .unwrap();
    let good: Vec<_> = inputs[1..]
        .iter()
        .map(|i| server.submit(i.clone()).unwrap())
        .collect();
    match bad.wait() {
        Err(AccelError::EnginePanic { .. }) => {}
        other => panic!("expected EnginePanic, got {other:?}"),
    }
    for ticket in good {
        ticket.wait().unwrap();
    }

    let recorder = server.recorder().clone();
    assert_eq!(recorder.open_spans(), 0);
    let traces = recorder.drain();
    assert_eq!(traces.len(), inputs.len());
    let panics = traces
        .iter()
        .filter(|t| {
            t.outcome
                == Outcome::Error {
                    code: "engine_panic".to_string(),
                }
        })
        .count();
    let scores = traces
        .iter()
        .filter(|t| matches!(t.outcome, Outcome::Scores { .. }))
        .count();
    assert_eq!(panics, 1, "exactly the poisoned request traces a panic");
    assert_eq!(scores, inputs.len() - 1);
    server.shutdown();
}
