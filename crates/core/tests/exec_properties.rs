//! Property tests pinning the pipelined execution engine and the streaming
//! batch server **bit-identical** to the strictly sequential oracle:
//! accumulators (logits), per-layer `UnitStats`, memory traffic and the
//! complete `RunReport` must match across random network shapes, strides,
//! paddings, spike-train lengths, accelerator geometries and batch sizes —
//! including batch = 1 and an all-silent input.

use proptest::prelude::*;
use snn_accel::config::{AcceleratorConfig, ArrayGeometry};
use snn_accel::exec::{ExecOptions, ExecutionMode};
use snn_accel::serve::{ServerOptions, StreamServer};
use snn_accel::sim::Accelerator;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::{LayerSpec, NetworkSpec};
use snn_tensor::Tensor;

#[derive(Debug, Clone, Copy)]
struct ScenarioParams {
    c_in: usize,
    c_out: usize,
    size: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    with_pool: bool,
    time_steps: usize,
    conv_units: usize,
    columns: usize,
    batch: usize,
    seed: u64,
}

/// Builds a random small network, converts it, and derives an accelerator
/// configuration whose narrow geometry forces several sequential channel
/// groups — the regime where the fused conv → pool pipeline actually
/// overlaps.  Returns `None` for dimension combinations that do not form a
/// valid network.
fn build_scenario(p: ScenarioParams) -> Option<(SnnModel, Vec<Tensor<f32>>, AcceleratorConfig)> {
    let padded = p.size + 2 * p.padding;
    if p.kernel > padded {
        return None;
    }
    let conv_out = (padded - p.kernel) / p.stride + 1;
    let mut layers = vec![LayerSpec::Conv2d {
        in_channels: p.c_in,
        out_channels: p.c_out,
        kernel: p.kernel,
        stride: p.stride,
        padding: p.padding,
    }];
    let (fh, fw) = if p.with_pool && conv_out >= 2 {
        layers.push(LayerSpec::avg_pool2());
        (conv_out / 2, conv_out / 2)
    } else {
        (conv_out, conv_out)
    };
    layers.push(LayerSpec::Flatten);
    layers.push(LayerSpec::linear(p.c_out * fh * fw, 4));
    let net = NetworkSpec::new("exec-prop", vec![p.c_in, p.size, p.size], layers).ok()?;
    let params = Parameters::he_init(&net, p.seed).ok()?;

    let volume = p.c_in * p.size * p.size;
    let inputs: Vec<Tensor<f32>> = (0..p.batch)
        .map(|b| {
            let values: Vec<f32> = (0..volume)
                .map(|j| {
                    let x = (j as u64 * 2654435761)
                        .wrapping_add(p.seed)
                        .wrapping_add(b as u64 * 7919);
                    (x % 97) as f32 / 96.0
                })
                .collect();
            Tensor::from_vec(vec![p.c_in, p.size, p.size], values).unwrap()
        })
        .collect();
    let stats = CalibrationStats::collect(&net, &params, inputs.iter()).ok()?;
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps: p.time_steps,
        },
    )
    .ok()?;

    let config = AcceleratorConfig {
        conv_units: p.conv_units,
        conv_geometry: ArrayGeometry {
            columns: p.columns,
            rows: p.kernel,
        },
        ..AcceleratorConfig::default()
    };
    Some((model, inputs, config))
}

/// Guards the generators: typical draws must produce a real scenario, and
/// the narrow geometry must force several channel groups so the fused
/// pipeline genuinely runs (not just its sequential fallback).
#[test]
fn typical_scenarios_build_and_pipeline() {
    let (model, inputs, config) = build_scenario(ScenarioParams {
        c_in: 2,
        c_out: 6,
        size: 8,
        kernel: 3,
        stride: 1,
        padding: 1,
        with_pool: true,
        time_steps: 4,
        conv_units: 1,
        columns: 3,
        batch: 2,
        seed: 42,
    })
    .expect("scenario must build");
    assert_eq!(inputs.len(), 2);
    let accel = Accelerator::new(config);
    let program = accel.compile(&model).unwrap();
    assert!(
        program.steps[0].channel_groups > 1,
        "narrow geometry must force sequential channel groups"
    );
    let report = accel.run(&model, &inputs[0]).unwrap();
    assert_eq!(report, accel.run_sequential(&model, &inputs[0]).unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pipelined executor (stage overlap through bounded queues) and
    /// the sequential oracle produce identical `RunReport`s in both
    /// execution modes, for any queue depth.
    #[test]
    fn pipelined_run_matches_sequential_oracle(
        c_in in 1usize..3,
        c_out in 1usize..8,
        size in 5usize..10,
        kernel in 2usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        time_steps in 1usize..6,
        conv_units in 1usize..3,
        columns in 2usize..6,
        queue_capacity in 1usize..4,
        seed in 0u64..1000,
    ) {
        let Some((model, inputs, config)) = build_scenario(ScenarioParams {
            c_in, c_out, size, kernel, stride, padding,
            with_pool: true, time_steps, conv_units, columns,
            batch: 1, seed,
        }) else { return Ok(()) };
        let accel = Accelerator::with_options(config, ExecOptions {
            pipeline: true,
            queue_capacity,
            ..ExecOptions::default()
        });
        let pipelined = accel.run(&model, &inputs[0]).unwrap();
        let sequential = accel.run_sequential(&model, &inputs[0]).unwrap();
        prop_assert_eq!(&pipelined, &sequential);
        let fast = accel.run_fast(&model, &inputs[0]).unwrap();
        let fast_sequential = accel.run_fast_sequential(&model, &inputs[0]).unwrap();
        prop_assert_eq!(&fast, &fast_sequential);
        // Cross-mode agreement: same logits, same modelled latency.
        prop_assert_eq!(&pipelined.logits, &fast.logits);
        prop_assert_eq!(pipelined.total_cycles(), fast.total_cycles());
    }

    /// Batch execution over the shared worker pool returns, per input,
    /// exactly the report of a solo sequential run — for batch sizes
    /// including one.
    #[test]
    fn batch_reports_match_solo_sequential_runs(
        c_out in 1usize..6,
        size in 5usize..9,
        kernel in 2usize..4,
        time_steps in 1usize..5,
        conv_units in 1usize..3,
        batch in 1usize..5,
        seed in 0u64..1000,
    ) {
        let Some((model, inputs, config)) = build_scenario(ScenarioParams {
            c_in: 1, c_out, size, kernel, stride: 1, padding: 0,
            with_pool: true, time_steps, conv_units, columns: 3,
            batch, seed,
        }) else { return Ok(()) };
        let accel = Accelerator::new(config);
        let reports = accel.run_batch(&model, &inputs).unwrap();
        prop_assert_eq!(reports.len(), inputs.len());
        for (report, input) in reports.iter().zip(&inputs) {
            let solo = accel.run_sequential(&model, input).unwrap();
            prop_assert_eq!(report, &solo);
        }
        let fast = accel.run_fast_batch(&model, &inputs).unwrap();
        for (report, input) in fast.iter().zip(&inputs) {
            let solo = accel.run_fast_sequential(&model, input).unwrap();
            prop_assert_eq!(report, &solo);
        }
    }

    /// Every report the streaming server hands back is bit-identical to
    /// the sequential oracle of its serving mode, for any micro-batch cap.
    #[test]
    fn stream_server_matches_sequential_oracle(
        c_out in 1usize..6,
        size in 5usize..9,
        kernel in 2usize..4,
        time_steps in 1usize..5,
        max_batch in 1usize..5,
        batch in 1usize..5,
        cycle_accurate in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let Some((model, inputs, config)) = build_scenario(ScenarioParams {
            c_in: 1, c_out, size, kernel, stride: 1, padding: 1,
            with_pool: true, time_steps, conv_units: 1, columns: 3,
            batch, seed,
        }) else { return Ok(()) };
        let mode = if cycle_accurate {
            ExecutionMode::CycleAccurate
        } else {
            ExecutionMode::Transaction
        };
        let server = StreamServer::start_with(config, model.clone(), ServerOptions {
            max_batch,
            mode,
            ..ServerOptions::default()
        }).unwrap();
        let served = server.run_all(&inputs).unwrap();
        let stats = server.shutdown();
        prop_assert_eq!(stats.completed, inputs.len() as u64);
        prop_assert_eq!(stats.errors, 0);
        let accel = Accelerator::new(config);
        for (report, input) in served.iter().zip(&inputs) {
            let solo = match mode {
                ExecutionMode::CycleAccurate => accel.run_sequential(&model, input).unwrap(),
                ExecutionMode::Transaction => accel.run_fast_sequential(&model, input).unwrap(),
            };
            prop_assert_eq!(report, &solo);
        }
    }

    /// An all-silent input exercises the engine's word-level skip paths:
    /// the pipelined and served reports still match the oracle exactly and
    /// the processing units perform no data-dependent work.
    #[test]
    fn all_silent_input_is_bit_identical_and_workless(
        c_out in 1usize..6,
        size in 5usize..9,
        kernel in 2usize..4,
        time_steps in 1usize..5,
        seed in 0u64..1000,
    ) {
        let Some((model, _inputs, config)) = build_scenario(ScenarioParams {
            c_in: 1, c_out, size, kernel, stride: 1, padding: 0,
            with_pool: true, time_steps, conv_units: 1, columns: 2,
            batch: 2, seed,
        }) else { return Ok(()) };
        let silent = Tensor::filled(vec![1, size, size], 0.0f32);
        let accel = Accelerator::new(config);
        let pipelined = accel.run(&model, &silent).unwrap();
        let sequential = accel.run_sequential(&model, &silent).unwrap();
        prop_assert_eq!(&pipelined, &sequential);
        // The first convolution sees no spikes at all.
        prop_assert_eq!(pipelined.layers[0].work.adder_ops, 0);
        // Cycles are still consumed: the schedule is input-independent.
        prop_assert!(pipelined.layers[0].work.cycles > 0);

        let server = StreamServer::start(config, model.clone()).unwrap();
        let served = server.run_all(std::slice::from_ref(&silent)).unwrap();
        prop_assert_eq!(&served[0], &sequential);
    }
}
